//! Fault-tolerance A/B: what the hardening costs when nothing is failing,
//! and how fast the stack recovers when something is.
//!
//! Part 1 — **idle-path overhead**: the same socket-level loadgen as the
//! gateway/obs benches, run against two serving stacks that differ ONLY in
//! the fault-tolerance machinery (per-engine circuit breakers + the worker
//! retry loop, on at defaults vs `BreakerConfig::disabled()` +
//! `RetryPolicy::disabled()`). Acceptance bar: hardening costs ≤ 3%
//! throughput on the fault-free path.
//!
//! Part 2 — **recovery time**: a runtime whose `native` engine is wrapped
//! in a `FaultInjectingEngine` serves closed-loop `"auto"` traffic; the
//! native engine is forced into a 2 s outage and the bench measures how
//! long after the outage ends the stack takes to re-reach 90% of its
//! pre-outage capacity, plus when the native breaker observably re-closes.
//!
//! Both measurements go to `BENCH_faults.json` at the workspace root.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use bishop_core::{BishopConfig, BishopSimulator};
use bishop_engine::{EngineName, EngineRegistry, InferenceEngine, NativeEngine, SimulatorEngine};
use bishop_faults::{FaultInjectingEngine, FaultPlan};
use bishop_gateway::{Gateway, GatewayConfig};
use bishop_runtime::{
    default_mixed_models, BatchPolicy, BreakerConfig, BreakerState, InferenceRequest, OnlineConfig,
    OnlineServer, RetryPolicy, RuntimeConfig,
};

const CLIENTS: usize = 12;
const REQUESTS_PER_CLIENT: usize = 384;
/// Paired alternating reps, best-of per arm (see the obs bench for why:
/// machine interference is one-sided, so each arm's unimpeded capacity is
/// its best pass).
const REPS: usize = 9;

fn infer_bytes() -> Vec<u8> {
    let body = r#"{"model": "cifar10-serve", "seed": 0, "engine": "simulator"}"#;
    format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Reads one keep-alive response; returns its status code.
fn read_response(stream: &mut TcpStream, buffer: &mut Vec<u8>) -> u16 {
    buffer.clear();
    let mut chunk = [0u8; 2048];
    let (head_end, body_len) = loop {
        let n = stream.read(&mut chunk).expect("response bytes");
        assert!(n > 0, "gateway closed unexpectedly");
        buffer.extend_from_slice(&chunk[..n]);
        if let Some(end) = buffer.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buffer[..end]).expect("UTF-8 head");
            let body_len = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .map(|v| v.parse::<usize>().expect("length"))
                .unwrap_or(0);
            break (end, body_len);
        }
    };
    while buffer.len() < head_end + 4 + body_len {
        let n = stream.read(&mut chunk).expect("body bytes");
        assert!(n > 0, "gateway closed mid-body");
        buffer.extend_from_slice(&chunk[..n]);
    }
    std::str::from_utf8(&buffer[..head_end])
        .expect("head")
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code")
}

/// Fans `CLIENTS` keep-alive connections at the gateway; returns req/s.
fn loadgen(addr: SocketAddr) -> f64 {
    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut buffer = Vec::new();
                for _ in 0..REQUESTS_PER_CLIENT {
                    stream.write_all(&infer_bytes()).expect("send");
                    assert_eq!(read_response(&mut stream, &mut buffer), 200);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    (CLIENTS * REQUESTS_PER_CLIENT) as f64 / start.elapsed().as_secs_f64()
}

/// Boots one serving stack (runtime + gateway) with hardening on or off.
fn boot(hardened: bool) -> (OnlineServer, Gateway) {
    let mut config = OnlineConfig::new(RuntimeConfig::new(4, BatchPolicy::new(8)))
        .with_batch_timeout(Some(Duration::from_millis(1)))
        .with_max_pending(4096);
    if !hardened {
        config = config
            .with_retry_policy(RetryPolicy::disabled())
            .with_breaker(BreakerConfig::disabled());
    }
    let runtime = OnlineServer::start(config);
    let gateway =
        Gateway::start(GatewayConfig::default(), runtime.handle()).expect("bind ephemeral port");
    (runtime, gateway)
}

/// Part 1: breakers+retries on vs off on a fault-free serving path.
fn idle_overhead_pct() -> (f64, f64, f64) {
    let (hardened_rt, hardened_gw) = boot(true);
    let (plain_rt, plain_gw) = boot(false);
    let hardened_addr = hardened_gw.local_addr();
    let plain_addr = plain_gw.local_addr();

    // Warm-up: first-touch costs (calibration, memoization, threads) hit
    // both arms identically and are excluded.
    loadgen(plain_addr);
    loadgen(hardened_addr);

    let mut plain = Vec::new();
    let mut hardened = Vec::new();
    for rep in 0..REPS {
        let (off, on) = if rep % 2 == 0 {
            let off = loadgen(plain_addr);
            (off, loadgen(hardened_addr))
        } else {
            let on = loadgen(hardened_addr);
            (loadgen(plain_addr), on)
        };
        println!(
            "faults idle rep {rep}: hardening off {off:.0} req/s, on {on:.0} req/s ({:+.2}%)",
            (off - on) / off * 100.0
        );
        plain.push(off);
        hardened.push(on);
    }
    hardened_gw.shutdown();
    plain_gw.shutdown();
    hardened_rt.shutdown();
    plain_rt.shutdown();

    let best = |xs: &[f64]| xs.iter().copied().fold(f64::MIN, f64::max);
    let (on, off) = (best(&hardened), best(&plain));
    ((off - on) / off * 100.0, on, off)
}

/// Part 2: 2 s forced native outage under closed-loop auto traffic.
/// Returns (recovery_to_90pct_seconds, breaker_close_seconds,
/// baseline_rps, outage_ok_fraction).
fn outage_recovery() -> (f64, f64, f64, f64) {
    let injector = Arc::new(FaultInjectingEngine::new(
        Arc::new(NativeEngine::new()),
        FaultPlan::new(),
    ));
    let registry = EngineRegistry::new()
        .with_engine(Arc::new(SimulatorEngine::new(BishopSimulator::new(
            BishopConfig::default(),
        ))))
        .with_engine(Arc::clone(&injector) as Arc<dyn InferenceEngine>);
    // A fast breaker so the 2 s outage and the recovery are both visible
    // inside a bench-sized run.
    let runtime = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(4, BatchPolicy::new(8)))
            .with_batch_timeout(Some(Duration::from_millis(1)))
            .with_max_pending(4096)
            .with_registry(Arc::new(registry))
            .with_breaker(BreakerConfig {
                window: 16,
                min_observations: 8,
                cooldown: Duration::from_millis(300),
                ..BreakerConfig::default()
            }),
    );
    let handle = runtime.handle();

    let entry = default_mixed_models()
        .into_iter()
        .find(|e| e.options.ecp_threshold.is_none())
        .expect("baseline-options entry");
    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let handle = handle.clone();
            let entry = Arc::clone(&entry);
            let stop = Arc::clone(&stop);
            let ok = Arc::clone(&ok);
            let failed = Arc::clone(&failed);
            std::thread::spawn(move || {
                let mut id = client as u64 * 1_000_000;
                while !stop.load(Ordering::Acquire) {
                    id += 1;
                    let request = InferenceRequest::new(id, Arc::clone(&entry), 0)
                        .with_engine(EngineName::auto());
                    match handle.try_submit(request) {
                        Ok(ticket) => match ticket.wait() {
                            Some(Ok(_)) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
            })
        })
        .collect();

    let rps_over = |window: Duration| {
        let before = ok.load(Ordering::Acquire);
        std::thread::sleep(window);
        (ok.load(Ordering::Acquire) - before) as f64 / window.as_secs_f64()
    };

    // Settle, then measure pre-outage capacity.
    std::thread::sleep(Duration::from_millis(500));
    let baseline = rps_over(Duration::from_secs(1));

    // 2 s forced outage: every native execution fails typed.
    let ok_before_outage = ok.load(Ordering::Acquire);
    let total_before_outage = ok_before_outage + failed.load(Ordering::Acquire);
    injector.set_forced(true);
    std::thread::sleep(Duration::from_secs(2));
    injector.set_forced(false);
    let outage_end = Instant::now();
    let ok_during = ok.load(Ordering::Acquire) - ok_before_outage;
    let total_during =
        ok.load(Ordering::Acquire) + failed.load(Ordering::Acquire) - total_before_outage;
    let outage_ok_fraction = if total_during == 0 {
        1.0
    } else {
        ok_during as f64 / total_during as f64
    };

    // Recovery: first 250 ms window back at >= 90% of baseline, and the
    // native breaker observably closed again.
    let mut recovery = f64::NAN;
    let mut breaker_close = f64::NAN;
    while outage_end.elapsed() < Duration::from_secs(10) {
        let window = rps_over(Duration::from_millis(250));
        if recovery.is_nan() && window >= 0.9 * baseline {
            recovery = outage_end.elapsed().as_secs_f64();
        }
        if breaker_close.is_nan() {
            let native_closed = handle.engine_stats().iter().any(|e| {
                e.engine == EngineName::native() && e.breaker.state == BreakerState::Closed
            });
            if native_closed {
                breaker_close = outage_end.elapsed().as_secs_f64();
            }
        }
        if !recovery.is_nan() && !breaker_close.is_nan() {
            break;
        }
    }
    stop.store(true, Ordering::Release);
    for client in clients {
        client.join().expect("client thread");
    }
    runtime.shutdown();
    (recovery, breaker_close, baseline, outage_ok_fraction)
}

fn bench_fault_tolerance(_c: &mut Criterion) {
    let (overhead_pct, hardened_rps, plain_rps) = idle_overhead_pct();
    println!(
        "fault-tolerance idle A/B: hardening on {hardened_rps:.0} req/s vs off \
         {plain_rps:.0} req/s best-of-{REPS} ({overhead_pct:+.2}% overhead)"
    );

    let (recovery_seconds, breaker_close_seconds, baseline_rps, outage_ok_fraction) =
        outage_recovery();
    println!(
        "fault-tolerance recovery: {baseline_rps:.0} req/s baseline, 2 s native outage \
         ({:.1}% of in-outage requests still succeeded), back to 90% capacity in \
         {recovery_seconds:.3} s, native breaker closed after {breaker_close_seconds:.3} s",
        outage_ok_fraction * 100.0
    );

    let json = format!(
        "{{\n  \"clients\": {CLIENTS},\n  \"requests_per_client\": {REQUESTS_PER_CLIENT},\n  \
         \"reps\": {REPS},\n  \"hardened_rps\": {hardened_rps:.0},\n  \
         \"plain_rps\": {plain_rps:.0},\n  \"idle_overhead_pct\": {overhead_pct:.2},\n  \
         \"outage_seconds\": 2.0,\n  \"baseline_rps\": {baseline_rps:.0},\n  \
         \"outage_ok_fraction\": {outage_ok_fraction:.4},\n  \
         \"recovery_to_90pct_seconds\": {recovery_seconds:.3},\n  \
         \"breaker_close_seconds\": {breaker_close_seconds:.3}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    assert!(
        overhead_pct <= 3.0,
        "breakers+retries must cost <= 3% fault-free throughput, measured {overhead_pct:.2}%"
    );
    assert!(
        !recovery_seconds.is_nan() && !breaker_close_seconds.is_nan(),
        "the stack must re-reach 90% capacity and re-close the native breaker \
         within 10 s of a 2 s outage ending"
    );
}

criterion_group!(benches, bench_fault_tolerance);
criterion_main!(benches);
