//! Socket-level gateway loadgen: drives the full HTTP stack (raw TCP →
//! hand-rolled parser → JSON codec → admission → TTB-aligned batching →
//! simulated chip pool) end to end and reports wall-clock req/s plus the
//! shed rate.
//!
//! Two scenarios run after the criterion microbench:
//!
//! * **capacity** — a generously provisioned stack; the acceptance bar is
//!   ≥ 1000 req/s through the gateway with nothing shed.
//! * **overload** — a deliberately starved stack (`max_pending` 2); the
//!   point is that overload produces explicit 429s, never a hang: every
//!   submission gets *some* terminal HTTP status.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use bishop_gateway::{Gateway, GatewayConfig};
use bishop_runtime::{BatchPolicy, OnlineConfig, OnlineServer, RuntimeConfig};

// Synchronous keep-alive clients: each has one request outstanding, so the
// client count bounds the achievable batch size. 16 clients over 2 trace
// seeds models replay-heavy production traffic with enough concurrency for
// the batcher to amortize simulation across riders.
const CLIENTS: usize = 16;
const REQUESTS_PER_CLIENT: usize = 128;

fn boot(online: OnlineConfig) -> (OnlineServer, Gateway) {
    let runtime = OnlineServer::start(online);
    let gateway =
        Gateway::start(GatewayConfig::default(), runtime.handle()).expect("bind ephemeral port");
    (runtime, gateway)
}

// Replay traffic: every request asks for the same trace seed, the way
// retried or replayed production requests do. On the simulator engine,
// batches then repeat earlier compositions and the runtime's two
// memoization levels absorb them, so the loadgen measures the sustainable
// ceiling of the HTTP + admission + batching path itself rather than cold
// per-batch simulation cost (the serving bench covers that axis). On the
// native engine every batch is a real CPU forward pass — the same wire
// traffic A/B-measures an execution substrate instead.
fn infer_bytes_on(engine: &str, seed: u64) -> Vec<u8> {
    let _ = seed;
    let body = format!("{{\"model\": \"cifar10-serve\", \"seed\": 0, \"engine\": \"{engine}\"}}");
    format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Reads one keep-alive response; returns its status code.
fn read_response(stream: &mut TcpStream, buffer: &mut Vec<u8>) -> u16 {
    buffer.clear();
    let mut chunk = [0u8; 2048];
    let (head_end, body_len) = loop {
        let n = stream.read(&mut chunk).expect("response bytes");
        assert!(n > 0, "gateway closed unexpectedly");
        buffer.extend_from_slice(&chunk[..n]);
        if let Some(end) = buffer.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buffer[..end]).expect("UTF-8 head");
            let body_len = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .map(|v| v.parse::<usize>().expect("length"))
                .unwrap_or(0);
            break (end, body_len);
        }
    };
    while buffer.len() < head_end + 4 + body_len {
        let n = stream.read(&mut chunk).expect("body bytes");
        assert!(n > 0, "gateway closed mid-body");
        buffer.extend_from_slice(&chunk[..n]);
    }
    std::str::from_utf8(&buffer[..head_end])
        .expect("head")
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code")
}

/// One keep-alive client issuing `count` requests; returns (ok, shed).
fn run_client(addr: SocketAddr, engine: &str, count: usize, base_seed: u64) -> (u64, u64) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut buffer = Vec::new();
    let (mut ok, mut shed) = (0u64, 0u64);
    for i in 0..count {
        stream
            .write_all(&infer_bytes_on(engine, base_seed + i as u64))
            .expect("send");
        match read_response(&mut stream, &mut buffer) {
            200 => ok += 1,
            429 | 503 => shed += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    (ok, shed)
}

/// Fans `CLIENTS` keep-alive connections at the gateway; returns
/// (req/s, ok, shed).
fn loadgen(addr: SocketAddr, engine: &'static str) -> (f64, u64, u64) {
    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || run_client(addr, engine, REQUESTS_PER_CLIENT, client as u64))
        })
        .collect();
    let (mut ok, mut shed) = (0u64, 0u64);
    for worker in workers {
        let (o, s) = worker.join().expect("client thread");
        ok += o;
        shed += s;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
    (total / elapsed, ok, shed)
}

fn bench_gateway(c: &mut Criterion) {
    let (runtime, gateway) = boot(
        OnlineConfig::new(RuntimeConfig::new(4, BatchPolicy::new(8)))
            .with_batch_timeout(Some(Duration::from_millis(1)))
            .with_max_pending(4096),
    );
    let addr = gateway.local_addr();

    // Microbench: one HTTP round trip on a warm keep-alive connection.
    let mut group = c.benchmark_group("gateway");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_millis(500));
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut buffer = Vec::new();
    let mut seed = 0u64;
    group.bench_function("http_infer_roundtrip", |b| {
        b.iter(|| {
            stream
                .write_all(&infer_bytes_on("simulator", seed))
                .expect("send");
            seed += 1;
            assert_eq!(read_response(&mut stream, &mut buffer), 200);
        })
    });
    drop(stream);
    group.finish();

    // Capacity scenario on the simulator engine: the acceptance bar is
    // ≥ 1000 req/s, nothing shed.
    let batches_before = runtime.stats().batches_executed;
    let (sim_rps, ok, shed) = loadgen(addr, "simulator");
    let batches = runtime.stats().batches_executed - batches_before;
    println!(
        "gateway capacity [engine=simulator] : {sim_rps:.0} req/s over {CLIENTS} connections \
         ({ok} ok, {shed} shed, {batches} batches, mean batch {:.2})",
        ok as f64 / batches.max(1) as f64,
    );
    assert!(
        sim_rps >= 1000.0,
        "gateway must sustain >= 1000 req/s end to end, measured {sim_rps:.0}"
    );
    assert_eq!(shed, 0, "capacity run must not shed");

    // The same wire traffic on the native engine: every batch is a real
    // word-parallel CPU forward pass (no result memoization), so this is
    // the measured execution-substrate A/B the engine API exists for.
    let batches_before = runtime.stats().batches_executed;
    let (native_rps, ok, shed) = loadgen(addr, "native");
    let batches = runtime.stats().batches_executed - batches_before;
    println!(
        "gateway capacity [engine=native]    : {native_rps:.0} req/s over {CLIENTS} connections \
         ({ok} ok, {shed} shed, {batches} batches, mean batch {:.2})",
        ok as f64 / batches.max(1) as f64,
    );
    assert_eq!(shed, 0, "native capacity run must not shed");
    println!(
        "gateway engine A/B  : simulator {sim_rps:.0} req/s vs native {native_rps:.0} req/s \
         ({:.2}x)",
        sim_rps / native_rps.max(1e-9),
    );
    gateway.shutdown();
    runtime.shutdown();

    // Overload scenario: a starved queue sheds explicitly — every request
    // still gets a terminal status (no hangs, no panics).
    let (runtime, gateway) = boot(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(2)).with_queue_capacity(2))
            .with_batch_timeout(Some(Duration::from_millis(1)))
            .with_max_pending(2),
    );
    let (rps, ok, shed) = loadgen(gateway.local_addr(), "simulator");
    let total = ok + shed;
    let shed_rate = shed as f64 / total as f64;
    println!(
        "gateway overload : {rps:.0} req/s, shed rate {:.1}% ({ok} ok / {shed} shed)",
        shed_rate * 100.0
    );
    assert_eq!(total, (CLIENTS * REQUESTS_PER_CLIENT) as u64);
    assert!(shed > 0, "a starved queue must shed explicitly");
    gateway.shutdown();
    runtime.shutdown();
}

criterion_group!(benches, bench_gateway);
criterion_main!(benches);
