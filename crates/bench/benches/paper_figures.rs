//! One Criterion benchmark group per table/figure of the Bishop paper's
//! evaluation section. Each group regenerates the artefact at the quick
//! experiment scale (see `bishop-experiments`) so the whole suite completes
//! in minutes while exercising exactly the code paths the full-scale
//! binaries use.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bishop_experiments::{self as experiments, ExperimentScale};

fn configured<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group
}

fn bench_table1(c: &mut Criterion) {
    let mut group = configured(c, "table1_accuracy");
    group.bench_function("literature_plus_measured", |b| {
        b.iter(experiments::table1_accuracy::run)
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut group = configured(c, "table2_models");
    group.bench_function("model_configurations", |b| {
        b.iter(experiments::table2_models::run)
    });
    group.finish();
}

fn bench_fig03(c: &mut Criterion) {
    let mut group = configured(c, "fig03_flops_breakdown");
    group.bench_function("profile_sweep", |b| b.iter(experiments::fig03_flops::run));
    group.finish();
}

fn bench_fig05(c: &mut Criterion) {
    let mut group = configured(c, "fig05_bundle_distribution");
    group.bench_function("q_k_distributions", |b| {
        b.iter(|| experiments::fig05_bundle_distribution::run(ExperimentScale::Quick))
    });
    group.finish();
}

fn bench_fig06(c: &mut Criterion) {
    let mut group = configured(c, "fig06_stratified_density");
    group.bench_function("stratified_densities", |b| {
        b.iter(|| experiments::fig06_stratified_density::run(ExperimentScale::Quick))
    });
    group.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut group = configured(c, "fig11_layerwise");
    group.bench_function("bishop_vs_ptb_per_layer", |b| {
        b.iter(|| experiments::fig11_layerwise::run(ExperimentScale::Quick))
    });
    group.finish();
}

fn bench_fig12_13(c: &mut Criterion) {
    let mut group = configured(c, "fig12_13_end_to_end");
    group.bench_function("all_variants_all_models", |b| {
        b.iter(|| experiments::fig12_13_end_to_end::run(ExperimentScale::Quick))
    });
    group.finish();

    // Print the measured headline comparison once so `cargo bench` output can
    // be pasted into EXPERIMENTS.md.
    let results = experiments::fig12_13_end_to_end::run(ExperimentScale::Quick);
    for r in &results {
        println!(
            "[fig12/13] {}: Bishop {:.2}x, +BSA {:.2}x, +BSA+ECP {:.2}x vs PTB (energy {:.2}x)",
            r.config.name,
            r.bishop_speedup_vs_ptb(),
            r.bsa_speedup_vs_ptb(),
            r.bsa_ecp_speedup_vs_ptb(),
            r.bsa_ecp_energy_vs_ptb()
        );
    }
}

fn bench_fig14(c: &mut Criterion) {
    let mut group = configured(c, "fig14_ecp_sweep");
    group.bench_function("hardware_threshold_sweep", |b| {
        b.iter(|| experiments::fig14_ecp_sweep::run_hardware(ExperimentScale::Quick))
    });
    group.finish();
}

fn bench_fig15(c: &mut Criterion) {
    let mut group = configured(c, "fig15_stratification");
    group.bench_function("strategy_sweep", |b| {
        b.iter(|| experiments::fig15_stratification::run(ExperimentScale::Quick))
    });
    group.finish();
}

fn bench_fig16(c: &mut Criterion) {
    let mut group = configured(c, "fig16_bundle_volume");
    group.bench_function("bundle_volume_sweep", |b| {
        b.iter(|| experiments::fig16_bundle_volume::run(ExperimentScale::Quick))
    });
    group.finish();
}

fn bench_fig17(c: &mut Criterion) {
    let mut group = configured(c, "fig17_breakdown");
    group.bench_function("area_power_breakdown", |b| {
        b.iter(experiments::fig17_breakdown::run)
    });
    group.finish();
}

fn bench_headline(c: &mut Criterion) {
    let mut group = configured(c, "headline_summary");
    group.bench_function("section_6_2_to_6_4", |b| {
        b.iter(|| experiments::headline::run(ExperimentScale::Quick))
    });
    group.finish();
}

criterion_group!(
    paper_figures,
    bench_table1,
    bench_table2,
    bench_fig03,
    bench_fig05,
    bench_fig06,
    bench_fig11,
    bench_fig12_13,
    bench_fig14,
    bench_fig15,
    bench_fig16,
    bench_fig17,
    bench_headline,
);
criterion_main!(paper_figures);
