//! # bishop-bench
//!
//! Criterion benchmark harness for the Bishop reproduction. There are two
//! bench targets:
//!
//! * `paper_figures` — one benchmark group per table/figure of the paper's
//!   evaluation; each group times the regeneration of that artefact (at the
//!   quick experiment scale so a full `cargo bench --workspace` stays under a
//!   few minutes) and prints the headline measured numbers once.
//! * `kernels` — micro-benchmarks of the hot kernels the simulators and
//!   algorithms are built on (bundle tagging, stratification, ECP, the
//!   dense/sparse/attention core cost models).
//!
//! Run with `cargo bench --workspace`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bishop_bundle::TrainingRegime;
use bishop_model::{ModelConfig, ModelWorkload};

/// Builds the quick-scale calibrated workload used by the benchmark groups so
/// that workload generation cost is paid outside the timed region.
pub fn quick_workload(config: &ModelConfig, regime: TrainingRegime) -> ModelWorkload {
    let scaled = bishop_experiments::ExperimentScale::Quick.scale_config(config);
    bishop_experiments::build_workload(&scaled, regime, 1234)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workload_builds_for_every_paper_model() {
        for config in ModelConfig::paper_models() {
            let workload = quick_workload(&config, TrainingRegime::Baseline);
            assert!(!workload.layers().is_empty());
        }
    }
}
