//! Surrogate-gradient training loop with the BSA bundle-sparsity loss.

use bishop_bundle::{BundleShape, BundleSparsityStats, TtbTags};
use bishop_spiketensor::DenseMatrix;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::classifier::SpikingClassifier;
use crate::dataset::SpikePatternDataset;

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Weight `λ` of the bundle-sparsity loss `L_bsp` (0 disables BSA).
    pub bsa_lambda: f32,
    /// Bundle shape used for the BSA loss and for ECP-aware training.
    pub bundle: BundleShape,
    /// When set, ECP pruning with this threshold is applied in the forward
    /// pass during training (ECP-aware training, §4).
    pub ecp_aware_threshold: Option<u32>,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            learning_rate: 0.05,
            bsa_lambda: 0.0,
            bundle: BundleShape::default(),
            ecp_aware_threshold: None,
        }
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Mean cross-entropy loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Accuracy on the training split after the final epoch.
    pub final_train_accuracy: f64,
    /// Accuracy on the held-out split after the final epoch.
    pub test_accuracy: f64,
    /// Mean spike density of the hidden layer over the test split.
    pub hidden_spike_density: f64,
    /// Mean TTB (bundle-level) density of the hidden layer over the test
    /// split — the quantity BSA training drives down.
    pub hidden_ttb_density: f64,
    /// Mean bundle-sparsity loss (`L_bsp`, spike count) per test sample.
    pub mean_bundle_loss: f64,
}

/// The trainer: plain SGD with backpropagation through the readout and one
/// surrogate-gradient step through the hidden LIF layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Trainer {
    config: TrainingConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainingConfig) -> Self {
        Self { config }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Trains `model` on `dataset` and returns the report.
    pub fn train<R: Rng>(
        &self,
        model: &mut SpikingClassifier,
        dataset: &SpikePatternDataset,
        rng: &mut R,
    ) -> TrainingReport {
        let mut order: Vec<usize> = (0..dataset.train.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);

        for _ in 0..self.config.epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            for &index in &order {
                let sample = &dataset.train[index];
                epoch_loss += self.train_step(model, sample.label, sample);
            }
            epoch_losses.push(epoch_loss / dataset.train.len() as f64);
        }

        // Final statistics on the held-out split.
        let mut spike_density = 0.0;
        let mut ttb_density = 0.0;
        let mut bundle_loss = 0.0;
        for sample in &dataset.test {
            let trace = model.forward(&sample.spikes, None, self.config.bundle);
            let stats = BundleSparsityStats::measure(&trace.hidden_spikes, self.config.bundle);
            spike_density += stats.spike_density;
            ttb_density += stats.ttb_density;
            bundle_loss +=
                TtbTags::from_tensor(&trace.hidden_spikes, self.config.bundle).tag_sum() as f64;
        }
        let n_test = dataset.test.len().max(1) as f64;

        TrainingReport {
            epoch_losses,
            final_train_accuracy: model.accuracy(&dataset.train, None, self.config.bundle),
            test_accuracy: model.accuracy(&dataset.test, None, self.config.bundle),
            hidden_spike_density: spike_density / n_test,
            hidden_ttb_density: ttb_density / n_test,
            mean_bundle_loss: bundle_loss / n_test,
        }
    }

    /// One SGD step on one sample; returns the cross-entropy loss.
    fn train_step(
        &self,
        model: &mut SpikingClassifier,
        label: usize,
        sample: &crate::dataset::SpikeSample,
    ) -> f64 {
        let input = &sample.spikes;
        let shape = input.shape();
        let trace = model.forward(input, self.config.ecp_aware_threshold, self.config.bundle);
        let probabilities = trace.probabilities();
        let loss = -f64::from(probabilities[label].max(1e-12).ln());

        // dL/dlogit_c = p_c - 1{c == label}
        let mut dlogits = probabilities;
        dlogits[label] -= 1.0;

        let hidden = model.hidden();
        let classes = model.classes();
        let norm = (shape.timesteps * shape.tokens) as f32;

        // Readout gradient: dL/dW2[h, c] = Σ_{t,n} S[t,n,h] / norm * dlogits[c].
        let mut dw2 = DenseMatrix::zeros(hidden, classes);
        for (_, _, h) in trace.hidden_spikes.iter_active() {
            for (c, &dlogit) in dlogits.iter().enumerate() {
                dw2.add_assign(h, c, dlogit / norm);
            }
        }

        // Gradient reaching each hidden spike through the readout:
        // dL/dS[t,n,h] = Σ_c W2[h,c] * dlogits[c] / norm.
        let mut dspike_readout = vec![0.0f32; hidden];
        for (h, value) in dspike_readout.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, &dlogit) in dlogits.iter().enumerate() {
                acc += model.w2().get(h, c) * dlogit;
            }
            *value = acc / norm;
        }

        // BSA: L_bsp adds a constant positive gradient to every potential
        // spike, weighted so that spikes sitting in weakly active bundles are
        // suppressed first (which is what empties bundles and creates the
        // structured sparsity of Fig. 5/6).
        let tags = (self.config.bsa_lambda != 0.0)
            .then(|| TtbTags::from_tensor(&trace.hidden_spikes, self.config.bundle));
        let grid = tags.as_ref().map(|t| t.grid());

        // Hidden-layer gradient through the surrogate:
        // dL/dW1[d, h] = Σ_{t,n} (dL/dS + λ·w_bundle) · σ'(V[t,n,h]) · X[t,n,d].
        let mut dw1 = DenseMatrix::zeros(model.input_features(), hidden);
        for t in 0..shape.timesteps {
            let membrane = &trace.hidden_membrane[t];
            for n in 0..shape.tokens {
                // Collect the active input features of this (t, n) once.
                let active_inputs: Vec<usize> = (0..shape.features)
                    .filter(|&d| input.get(t, n, d))
                    .collect();
                if active_inputs.is_empty() {
                    continue;
                }
                for (h, &readout_grad) in dspike_readout.iter().enumerate() {
                    let surrogate = model.surrogate_derivative(membrane.get(n, h));
                    if surrogate == 0.0 {
                        continue;
                    }
                    let mut upstream = readout_grad;
                    // The BSA penalty only pushes on positions that actually
                    // fired: existing spikes in weakly active bundles receive
                    // the strongest suppression, so those bundles empty out
                    // first. This keeps the regulariser self-limiting (once
                    // firing stops, so does the pressure).
                    if trace.hidden_spikes.get(t, n, h) {
                        if let (Some(tags), Some(grid)) = (tags.as_ref(), grid.as_ref()) {
                            let (bt, bn) = grid.bundle_of(t, n);
                            let tag = tags.tag(bt, bn, h) as f32;
                            upstream += self.config.bsa_lambda / (1.0 + tag);
                        }
                    }
                    let delta = upstream * surrogate;
                    if delta == 0.0 {
                        continue;
                    }
                    for &d in &active_inputs {
                        dw1.add_assign(d, h, delta);
                    }
                }
            }
        }

        model.apply_gradients(&dw1, &dw2, self.config.learning_rate);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(seed: u64) -> SpikePatternDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        SpikePatternDataset::generate(3, 30, 4, 8, 18, 0.05, &mut rng)
    }

    fn train_with(config: TrainingConfig, seed: u64) -> (SpikingClassifier, TrainingReport) {
        let data = dataset(seed);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let mut model = SpikingClassifier::random(18, 24, 3, &mut rng);
        let report = Trainer::new(config).train(&mut model, &data, &mut rng);
        (model, report)
    }

    #[test]
    fn training_learns_the_task() {
        let (_, report) = train_with(
            TrainingConfig {
                epochs: 12,
                learning_rate: 0.08,
                ..TrainingConfig::default()
            },
            3,
        );
        assert!(
            report.final_train_accuracy > 0.7,
            "train accuracy too low: {}",
            report.final_train_accuracy
        );
        assert!(
            report.test_accuracy > 0.6,
            "test accuracy too low: {}",
            report.test_accuracy
        );
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (_, report) = train_with(
            TrainingConfig {
                epochs: 10,
                learning_rate: 0.08,
                ..TrainingConfig::default()
            },
            5,
        );
        let first = report.epoch_losses.first().copied().unwrap();
        let last = report.epoch_losses.last().copied().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn bsa_reduces_bundle_density_without_collapsing_accuracy() {
        let baseline = train_with(
            TrainingConfig {
                epochs: 12,
                learning_rate: 0.08,
                bsa_lambda: 0.0,
                ..TrainingConfig::default()
            },
            7,
        )
        .1;
        let bsa = train_with(
            TrainingConfig {
                epochs: 12,
                learning_rate: 0.08,
                bsa_lambda: 0.02,
                ..TrainingConfig::default()
            },
            7,
        )
        .1;
        assert!(
            bsa.hidden_ttb_density < baseline.hidden_ttb_density,
            "BSA should reduce bundle density: {} vs {}",
            bsa.hidden_ttb_density,
            baseline.hidden_ttb_density
        );
        assert!(
            bsa.test_accuracy >= baseline.test_accuracy - 0.25,
            "BSA cost too much accuracy: {} vs {}",
            bsa.test_accuracy,
            baseline.test_accuracy
        );
    }

    #[test]
    fn ecp_aware_training_still_learns() {
        let (_, report) = train_with(
            TrainingConfig {
                epochs: 12,
                learning_rate: 0.08,
                ecp_aware_threshold: Some(2),
                ..TrainingConfig::default()
            },
            9,
        );
        assert!(
            report.final_train_accuracy > 0.55,
            "ECP-aware training accuracy too low: {}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn report_densities_are_fractions() {
        let (_, report) = train_with(TrainingConfig::default(), 11);
        assert!((0.0..=1.0).contains(&report.hidden_spike_density));
        assert!((0.0..=1.0).contains(&report.hidden_ttb_density));
        assert!(report.mean_bundle_loss >= 0.0);
    }
}
