//! Accuracy-vs-pruning-threshold sweeps (the accuracy axis of Fig. 14).

use bishop_bundle::BundleShape;

use crate::classifier::SpikingClassifier;
use crate::dataset::SpikeSample;

/// One point of an ECP threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcpSweepPoint {
    /// The pruning threshold `θp`.
    pub threshold: u32,
    /// Classification accuracy with pruning applied at inference time.
    pub accuracy: f64,
    /// Accuracy without any pruning (reference).
    pub baseline_accuracy: f64,
}

impl EcpSweepPoint {
    /// Accuracy change relative to the unpruned baseline (positive means the
    /// pruning acted as a beneficial denoiser, as the paper observes for
    /// moderate thresholds).
    pub fn accuracy_delta(&self) -> f64 {
        self.accuracy - self.baseline_accuracy
    }
}

/// Evaluates `model` on `samples` for every pruning threshold in
/// `thresholds`, returning one sweep point per threshold.
pub fn accuracy_under_pruning(
    model: &SpikingClassifier,
    samples: &[SpikeSample],
    thresholds: &[u32],
    bundle: BundleShape,
) -> Vec<EcpSweepPoint> {
    let baseline_accuracy = model.accuracy(samples, None, bundle);
    thresholds
        .iter()
        .map(|&threshold| EcpSweepPoint {
            threshold,
            accuracy: model.accuracy(samples, Some(threshold), bundle),
            baseline_accuracy,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SpikePatternDataset;
    use crate::trainer::{Trainer, TrainingConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained() -> (SpikingClassifier, SpikePatternDataset) {
        let mut rng = StdRng::seed_from_u64(21);
        let dataset = SpikePatternDataset::generate(3, 30, 4, 8, 18, 0.05, &mut rng);
        let mut model = SpikingClassifier::random(18, 24, 3, &mut rng);
        Trainer::new(TrainingConfig {
            epochs: 10,
            learning_rate: 0.08,
            ..TrainingConfig::default()
        })
        .train(&mut model, &dataset, &mut rng);
        (model, dataset)
    }

    #[test]
    fn sweep_produces_one_point_per_threshold() {
        let (model, dataset) = trained();
        let points = accuracy_under_pruning(
            &model,
            &dataset.test,
            &[0, 2, 4, 64],
            BundleShape::default(),
        );
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].threshold, 0);
    }

    #[test]
    fn zero_threshold_matches_baseline_accuracy() {
        let (model, dataset) = trained();
        let points = accuracy_under_pruning(&model, &dataset.test, &[0], BundleShape::default());
        assert!((points[0].accuracy - points[0].baseline_accuracy).abs() < 1e-9);
        assert!(points[0].accuracy_delta().abs() < 1e-9);
    }

    #[test]
    fn moderate_thresholds_keep_accuracy_extreme_thresholds_destroy_it() {
        let (model, dataset) = trained();
        let points =
            accuracy_under_pruning(&model, &dataset.test, &[0, 2, 1000], BundleShape::default());
        let baseline = points[0].accuracy;
        let moderate = points[1].accuracy;
        let extreme = points[2].accuracy;
        assert!(
            moderate >= baseline - 0.2,
            "moderate pruning should roughly preserve accuracy: {moderate} vs {baseline}"
        );
        assert!(
            extreme <= moderate,
            "pruning everything should not beat moderate pruning"
        );
        // Pruning every bundle row leaves no evidence to classify with;
        // accuracy collapses to (at best) chance level.
        assert!(extreme <= 1.0 / 3.0 + 0.2);
    }
}
