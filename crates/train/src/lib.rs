//! # bishop-train
//!
//! A from-scratch surrogate-gradient training pipeline demonstrating the
//! paper's two co-design algorithms on real (small-scale) models:
//!
//! * **Bundle-Sparsity-Aware training (BSA, §4.1)** — the bundle-level
//!   sparsity loss `L_bsp` is added to the cross-entropy objective with a
//!   weight `λ`, and its gradient flows through the surrogate spike
//!   derivative, pushing weakly active Token-Time Bundles to become silent.
//! * **ECP-aware training / evaluation (§4, §5.1)** — Error-Constrained
//!   bundle-row pruning is applied to the spiking activations during the
//!   forward pass, so accuracy as a function of the pruning threshold `θp`
//!   can be measured (and the model can adapt to pruning during training).
//!
//! The paper trains large spiking vision transformers on CIFAR/ImageNet with
//! PyTorch; that stack is substituted (see `DESIGN.md`) by a compact spiking
//! classifier trained on synthetic spike-pattern classification tasks — small
//! enough to train in milliseconds inside unit tests, yet exercising the same
//! mechanics: LIF dynamics over multiple timesteps, surrogate gradients,
//! bundle tagging, the `L_bsp` regulariser, and threshold-based pruning.
//!
//! ```
//! use bishop_train::{SpikePatternDataset, SpikingClassifier, Trainer, TrainingConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let dataset = SpikePatternDataset::generate(3, 40, 4, 8, 16, 0.1, &mut rng);
//! let mut model = SpikingClassifier::random(16, 24, 3, &mut rng);
//! let config = TrainingConfig { epochs: 4, ..TrainingConfig::default() };
//! let report = Trainer::new(config).train(&mut model, &dataset, &mut rng);
//! assert!(report.final_train_accuracy > 0.4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod dataset;
pub mod ecp_aware;
pub mod trainer;

pub use classifier::SpikingClassifier;
pub use dataset::{SpikePatternDataset, SpikeSample};
pub use ecp_aware::{accuracy_under_pruning, EcpSweepPoint};
pub use trainer::{Trainer, TrainingConfig, TrainingReport};
