//! A compact spiking classifier used to demonstrate BSA and ECP-aware
//! training end to end.

use bishop_bundle::{BundleShape, TtbTags};
use bishop_neuron::{LifConfig, SurrogateKind};
use bishop_spiketensor::{DenseMatrix, SpikeTensor, TensorShape};
use rand::Rng;

use crate::dataset::SpikeSample;

/// Everything the backward pass needs from one forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardTrace {
    /// Hidden-layer spikes, `T × N × H`.
    pub hidden_spikes: SpikeTensor,
    /// Pre-reset membrane potential of every hidden neuron at every timestep
    /// (`[t] → N × H`), used to evaluate the surrogate derivative.
    pub hidden_membrane: Vec<DenseMatrix>,
    /// Class logits (mean readout current over timesteps and tokens).
    pub logits: Vec<f32>,
}

impl ForwardTrace {
    /// Index of the largest logit.
    pub fn prediction(&self) -> usize {
        self.logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Softmax probabilities of the logits.
    pub fn probabilities(&self) -> Vec<f32> {
        let max = self
            .logits
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        let exp: Vec<f32> = self.logits.iter().map(|l| (l - max).exp()).collect();
        let sum: f32 = exp.iter().sum();
        exp.into_iter().map(|e| e / sum).collect()
    }
}

/// A two-stage spiking classifier: a spiking hidden layer (shared weights
/// across tokens, LIF dynamics across timesteps) followed by a non-spiking
/// readout that integrates the hidden spikes into class logits.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikingClassifier {
    w1: DenseMatrix,
    w2: DenseMatrix,
    lif: LifConfig,
    surrogate: SurrogateKind,
    surrogate_alpha: f32,
}

impl SpikingClassifier {
    /// Creates a classifier with random weights.
    pub fn random<R: Rng>(
        input_features: usize,
        hidden: usize,
        classes: usize,
        rng: &mut R,
    ) -> Self {
        let scale1 = (2.0 / input_features as f32).sqrt();
        let scale2 = (2.0 / hidden as f32).sqrt();
        Self {
            w1: DenseMatrix::random_uniform(input_features, hidden, scale1, rng),
            w2: DenseMatrix::random_uniform(hidden, classes, scale2, rng),
            lif: LifConfig::default(),
            surrogate: SurrogateKind::Rectangular,
            surrogate_alpha: 1.0,
        }
    }

    /// Input feature width.
    pub fn input_features(&self) -> usize {
        self.w1.rows()
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.w1.cols()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.w2.cols()
    }

    /// First-layer weights.
    pub fn w1(&self) -> &DenseMatrix {
        &self.w1
    }

    /// Readout weights.
    pub fn w2(&self) -> &DenseMatrix {
        &self.w2
    }

    /// The surrogate derivative evaluated at a membrane potential.
    pub fn surrogate_derivative(&self, v_mem: f32) -> f32 {
        self.surrogate
            .derivative(v_mem, self.lif.v_threshold, self.surrogate_alpha)
    }

    /// Applies SGD updates to both weight matrices.
    pub fn apply_gradients(&mut self, dw1: &DenseMatrix, dw2: &DenseMatrix, learning_rate: f32) {
        for r in 0..self.w1.rows() {
            for c in 0..self.w1.cols() {
                self.w1
                    .set(r, c, self.w1.get(r, c) - learning_rate * dw1.get(r, c));
            }
        }
        for r in 0..self.w2.rows() {
            for c in 0..self.w2.cols() {
                self.w2
                    .set(r, c, self.w2.get(r, c) - learning_rate * dw2.get(r, c));
            }
        }
    }

    /// Forward pass. When `ecp_threshold` is set, bundle rows of the hidden
    /// spike tensor whose active-bundle count (across hidden features) is
    /// below the threshold are pruned before the readout — the ECP-aware
    /// forward used both for evaluation sweeps and ECP-aware training.
    pub fn forward(
        &self,
        input: &SpikeTensor,
        ecp_threshold: Option<u32>,
        bundle: BundleShape,
    ) -> ForwardTrace {
        let shape = input.shape();
        assert_eq!(
            shape.features,
            self.input_features(),
            "input feature width {} does not match the classifier ({})",
            shape.features,
            self.input_features()
        );
        let hidden_shape = TensorShape::new(shape.timesteps, shape.tokens, self.hidden());

        let mut membrane = DenseMatrix::zeros(shape.tokens, self.hidden());
        let mut hidden_spikes = SpikeTensor::zeros(hidden_shape);
        let mut hidden_membrane = Vec::with_capacity(shape.timesteps);

        for t in 0..shape.timesteps {
            // Synaptic integration for this timestep.
            let mut pre_reset = DenseMatrix::zeros(shape.tokens, self.hidden());
            for n in 0..shape.tokens {
                for d in 0..shape.features {
                    if input.get(t, n, d) {
                        for h in 0..self.hidden() {
                            pre_reset.add_assign(n, h, self.w1.get(d, h));
                        }
                    }
                }
            }
            // LIF update with persistent membrane state.
            for n in 0..shape.tokens {
                for h in 0..self.hidden() {
                    let v = (membrane.get(n, h) + pre_reset.get(n, h) - self.lif.v_leak)
                        .max(self.lif.v_floor);
                    pre_reset.set(n, h, v);
                    if v > self.lif.v_threshold {
                        hidden_spikes.set(t, n, h, true);
                        membrane.set(n, h, self.lif.v_reset);
                    } else {
                        membrane.set(n, h, v);
                    }
                }
            }
            hidden_membrane.push(pre_reset);
        }

        let readout_spikes = match ecp_threshold {
            Some(theta) => prune_bundle_rows(&hidden_spikes, theta, bundle),
            None => hidden_spikes.clone(),
        };

        // Readout: mean over timesteps and tokens of W2ᵀ · spikes.
        let mut logits = vec![0.0f32; self.classes()];
        for (_, n, h) in readout_spikes.iter_active() {
            let _ = n;
            for (c, logit) in logits.iter_mut().enumerate() {
                *logit += self.w2.get(h, c);
            }
        }
        let norm = (shape.timesteps * shape.tokens) as f32;
        for l in &mut logits {
            *l /= norm;
        }

        ForwardTrace {
            hidden_spikes,
            hidden_membrane,
            logits,
        }
    }

    /// Predicted class of one input.
    pub fn predict(&self, input: &SpikeTensor) -> usize {
        self.forward(input, None, BundleShape::default())
            .prediction()
    }

    /// Classification accuracy over a set of samples, optionally with ECP
    /// pruning of the hidden activations.
    pub fn accuracy(
        &self,
        samples: &[SpikeSample],
        ecp_threshold: Option<u32>,
        bundle: BundleShape,
    ) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|s| self.forward(&s.spikes, ecp_threshold, bundle).prediction() == s.label)
            .count();
        correct as f64 / samples.len() as f64
    }
}

/// Prunes the bundle rows of a spike tensor whose active-bundle count across
/// features is below `threshold` — the same criterion ECP applies to spiking
/// queries/keys, here applied to a hidden activation tensor.
pub fn prune_bundle_rows(tensor: &SpikeTensor, threshold: u32, bundle: BundleShape) -> SpikeTensor {
    let tags = TtbTags::from_tensor(tensor, bundle);
    let grid = tags.grid();
    SpikeTensor::from_fn(tensor.shape(), |t, n, d| {
        if !tensor.get(t, n, d) {
            return false;
        }
        let (bt, bn) = grid.bundle_of(t, n);
        tags.active_in_row(bt, bn) as u32 >= threshold
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> SpikingClassifier {
        let mut rng = StdRng::seed_from_u64(11);
        SpikingClassifier::random(16, 24, 4, &mut rng)
    }

    fn input(density: f64, seed: u64) -> SpikeTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        SpikeTensor::from_fn(TensorShape::new(4, 8, 16), |_, _, _| rng.gen_bool(density))
    }

    #[test]
    fn forward_shapes_are_consistent() {
        let m = model();
        let trace = m.forward(&input(0.3, 1), None, BundleShape::default());
        assert_eq!(trace.logits.len(), 4);
        assert_eq!(trace.hidden_spikes.shape(), TensorShape::new(4, 8, 24));
        assert_eq!(trace.hidden_membrane.len(), 4);
        assert!(trace.prediction() < 4);
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let m = model();
        let trace = m.forward(&input(0.3, 2), None, BundleShape::default());
        let p = trace.probabilities();
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn zero_input_produces_zero_logits() {
        let m = model();
        let trace = m.forward(
            &SpikeTensor::zeros(TensorShape::new(4, 8, 16)),
            None,
            BundleShape::default(),
        );
        assert!(trace.logits.iter().all(|&l| l == 0.0));
        assert_eq!(trace.hidden_spikes.count_ones(), 0);
    }

    #[test]
    fn pruning_never_increases_hidden_activity_used_by_the_readout() {
        let m = model();
        let x = input(0.4, 3);
        let unpruned = m.forward(&x, None, BundleShape::default());
        let pruned = m.forward(&x, Some(8), BundleShape::default());
        // Hidden spikes themselves are unchanged (pruning happens on the
        // readout path), logits may differ.
        assert_eq!(unpruned.hidden_spikes, pruned.hidden_spikes);
    }

    #[test]
    fn prune_bundle_rows_threshold_zero_is_identity() {
        let x = input(0.2, 4);
        assert_eq!(prune_bundle_rows(&x, 0, BundleShape::default()), x);
        let all = prune_bundle_rows(&x, u32::MAX, BundleShape::default());
        assert_eq!(all.count_ones(), 0);
    }

    #[test]
    fn apply_gradients_moves_weights() {
        let mut m = model();
        let before = m.w1().get(0, 0);
        let dw1 = DenseMatrix::from_fn(16, 24, |_, _| 1.0);
        let dw2 = DenseMatrix::zeros(24, 4);
        m.apply_gradients(&dw1, &dw2, 0.1);
        assert!((m.w1().get(0, 0) - (before - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn surrogate_is_positive_near_threshold() {
        let m = model();
        assert!(m.surrogate_derivative(1.0) > 0.0);
        assert_eq!(m.surrogate_derivative(10.0), 0.0);
    }

    #[test]
    fn accuracy_of_empty_sample_set_is_zero() {
        let m = model();
        assert_eq!(m.accuracy(&[], None, BundleShape::default()), 0.0);
    }
}
