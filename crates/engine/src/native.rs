//! The native backend: the functional spiking transformer executed on the
//! host CPU via the word-parallel popcount kernels.
//!
//! Where the simulator *estimates* what the Bishop chip would do, this engine
//! actually runs the model: it materializes a [`SpikingTransformer`] with
//! deterministic weights for the batched configuration, synthesizes the
//! request's patch input from its trace seed, executes the full forward pass
//! (tokenizer → encoder blocks → classifier) on the bit-packed kernels, and
//! reports the **measured wall-clock** alongside a real class prediction.

use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

use bishop_model::{ComputePool, ModelConfig, SpikingTransformer, TransformerStepper};
use bishop_session::SessionState;
use bishop_spiketensor::words::simd;
use bishop_spiketensor::DenseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::api::{
    EngineBatch, EngineDescriptor, EngineOutput, EngineSubstrate, InferenceEngine, StepEvent,
    StepSink, StreamedOutput,
};
use crate::cache::OnceMap;
use crate::error::EngineError;
use crate::NATIVE_ENGINE;

/// Host-execution parameters of a [`NativeEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct NativeEngineConfig {
    /// Assumed package power while executing, used to convert the measured
    /// wall-clock into an energy estimate (a fixed-power host model; the
    /// paper's edge-CPU comparisons use the same simplification).
    pub cpu_power_watts: f64,
    /// Nominal host clock used to express the measured wall-clock as cycles.
    pub clock_hz: f64,
    /// Upper bound on the folded timestep axis of one batch: real execution
    /// cost is linear in it, so unbounded client-controlled batches could
    /// monopolize a worker.
    pub max_folded_timesteps: usize,
    /// Entry bound of the weight cache (one materialized transformer per
    /// distinct batched configuration).
    pub model_cache_capacity: usize,
    /// Width of the intra-batch compute pool: independent units of one
    /// batch (timesteps, heads, token-row chunks) fan out across this many
    /// threads, caller included. `0` auto-sizes to the host's available
    /// parallelism; `1` forces sequential execution. Results are
    /// bit-identical at any width.
    pub compute_workers: usize,
}

impl Default for NativeEngineConfig {
    fn default() -> Self {
        Self {
            cpu_power_watts: 15.0,
            clock_hz: 2.5e9,
            max_folded_timesteps: 1024,
            model_cache_capacity: 32,
            compute_workers: 0,
        }
    }
}

/// [`InferenceEngine`] that executes the forward pass for real on the CPU.
///
/// Weights are pseudo-random but **deterministic per batched configuration**
/// (seeded from the folded config the runtime hands over), and the patch
/// input is deterministic per batch seed — so the *prediction* is a
/// reproducible function of the batch description (`config`, `seed`), even
/// though the measured wall-clock (and therefore the reported
/// latency/energy) is not; the descriptor declares `deterministic: false`
/// accordingly. Note the batch-level granularity: like every
/// [`EngineOutput`], the prediction describes the *batch* — a request
/// coalesced with different riders rides a different folded configuration
/// and combined seed, and so may see a different prediction than it would
/// alone. Per-request prediction stability holds exactly for singleton
/// batches (`BatchPolicy::sequential()`). Materialized transformers are
/// memoized in a bounded build-once cache, so concurrent workers hitting
/// the same configuration build the weights exactly once.
#[derive(Debug)]
pub struct NativeEngine {
    config: NativeEngineConfig,
    models: OnceMap<ModelConfig, SpikingTransformer>,
    pool: ComputePool,
}

impl NativeEngine {
    /// An engine with the default host parameters.
    pub fn new() -> Self {
        Self::with_config(NativeEngineConfig::default())
    }

    /// An engine with explicit host parameters. The intra-batch compute
    /// pool is sized from [`NativeEngineConfig::compute_workers`].
    pub fn with_config(config: NativeEngineConfig) -> Self {
        let pool = ComputePool::new(config.compute_workers);
        Self::with_config_and_pool(config, pool)
    }

    /// An engine with an explicitly constructed compute pool (the runtime
    /// uses this to attach profiler probes to the pool lanes).
    pub fn with_config_and_pool(config: NativeEngineConfig, pool: ComputePool) -> Self {
        let capacity = config.model_cache_capacity;
        Self {
            config,
            models: OnceMap::with_capacity(capacity),
            pool,
        }
    }

    /// The host parameters in use.
    pub fn config(&self) -> &NativeEngineConfig {
        &self.config
    }

    /// The intra-batch compute pool.
    pub fn compute_pool(&self) -> &ComputePool {
        &self.pool
    }

    /// The transformer serving `config`, built (with weights seeded from the
    /// configuration) on first use.
    fn model(&self, config: &ModelConfig) -> Arc<SpikingTransformer> {
        self.models.get_or_build(config.clone(), || {
            let mut rng = StdRng::seed_from_u64(weight_seed(config));
            SpikingTransformer::random(config, config.features, config.dataset.classes(), &mut rng)
        })
    }
}

impl Default for NativeEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Deterministic weight seed of a configuration (stable across runs:
/// `DefaultHasher` uses fixed keys).
fn weight_seed(config: &ModelConfig) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    config.hash(&mut hasher);
    hasher.finish()
}

impl InferenceEngine for NativeEngine {
    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            name: NATIVE_ENGINE,
            substrate: EngineSubstrate::HostCpu,
            supports_ecp: false,
            deterministic: false,
            measures_wall_clock: true,
            max_folded_timesteps: Some(self.config.max_folded_timesteps),
            supports_streaming: true,
            // Real CPU execution is orders of magnitude slower than the
            // memoized simulator; seed conservatively and let the EWMA of
            // measured batch wall-clocks take over.
            seed_drain_ops_per_second: 2e9,
            simd_tier: Some(simd::active().tier().label()),
            description: "Functional spiking-transformer forward pass on the host CPU \
                          (word-parallel popcount kernels, measured wall-clock)",
        }
    }

    fn execute(&self, batch: &EngineBatch) -> Result<EngineOutput, EngineError> {
        self.descriptor().check(batch)?;
        let model = self.model(&batch.config);

        // The patch input is the native analogue of the simulator's
        // synthesized trace: deterministic in the batch seed, shaped
        // `tokens × features` for the tokenizer.
        let mut rng = StdRng::seed_from_u64(batch.seed);
        let patches =
            DenseMatrix::random_uniform(batch.config.tokens, batch.config.features, 1.0, &mut rng);

        let start = Instant::now();
        let result = model.infer_with(&patches, &self.pool);
        let wall = start.elapsed().as_secs_f64();

        Ok(EngineOutput {
            engine: NATIVE_ENGINE,
            latency_seconds: wall,
            energy_mj: self.config.cpu_power_watts * wall * 1e3,
            cycles: (wall * self.config.clock_hz) as u64,
            metrics: None,
            wall_seconds: Some(wall),
            prediction: Some(result.prediction),
        })
    }

    fn execute_streaming(
        &self,
        batch: &EngineBatch,
        steps: usize,
        resume: Option<&SessionState>,
        sink: &mut dyn StepSink,
    ) -> Result<StreamedOutput, EngineError> {
        self.descriptor().check(batch)?;
        let model = self.model(&batch.config);

        // Same deterministic patch synthesis as `execute`: the session pins
        // its seed at creation, so every continuation steps the exact input
        // the earlier requests ran on.
        let mut rng = StdRng::seed_from_u64(batch.seed);
        let patches =
            DenseMatrix::random_uniform(batch.config.tokens, batch.config.features, 1.0, &mut rng);

        let start = Instant::now();
        let mut stepper = match resume {
            Some(SessionState::Native(state)) => {
                TransformerStepper::resume(&model, &patches, state.clone())
                    .with_pool(self.pool.clone())
            }
            // A state exported by a different substrate cannot seed native
            // membranes; treat the coupling as broken rather than guess.
            Some(SessionState::Simulated { .. }) => {
                return Err(EngineError::StreamingUnsupported {
                    engine: NATIVE_ENGINE,
                })
            }
            None => TransformerStepper::new(&model, &patches).with_pool(self.pool.clone()),
        };
        assert!(
            stepper.timesteps_done() + steps > 0,
            "a streaming execution must cover at least one timestep"
        );
        let total = stepper.timesteps_done() + steps;
        for _ in 0..steps {
            let outcome = stepper.step();
            sink.on_step(&StepEvent {
                index: outcome.timestep,
                total,
                unit: "timestep",
                spikes: outcome.spikes,
            });
        }
        let readout = stepper.finish();
        let state = SessionState::Native(stepper.export());
        let wall = start.elapsed().as_secs_f64();

        Ok(StreamedOutput {
            output: EngineOutput {
                engine: NATIVE_ENGINE,
                latency_seconds: wall,
                energy_mj: self.config.cpu_power_watts * wall * 1e3,
                cycles: (wall * self.config.clock_hz) as u64,
                metrics: None,
                wall_seconds: Some(wall),
                prediction: Some(readout.prediction),
            },
            state,
            logits: Some(readout.logits),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_bundle::TrainingRegime;
    use bishop_core::SimOptions;
    use bishop_model::DatasetKind;

    fn batch(seed: u64, timesteps: usize, options: SimOptions) -> EngineBatch {
        EngineBatch {
            config: ModelConfig::new(
                "native-engine",
                DatasetKind::Cifar10,
                1,
                timesteps,
                8,
                16,
                2,
            ),
            regime: TrainingRegime::Bsa,
            seed,
            options,
            batch_size: 1,
            batch_id: 0,
        }
    }

    #[test]
    fn executes_a_real_forward_pass_with_measured_wall_clock() {
        let engine = NativeEngine::new();
        let output = engine
            .execute(&batch(3, 4, SimOptions::baseline()))
            .expect("baseline options are supported");
        assert_eq!(output.engine, "native");
        assert!(output.wall_seconds.expect("measured") > 0.0);
        assert!(output.latency_seconds > 0.0);
        assert!(output.energy_mj > 0.0);
        let prediction = output.prediction.expect("real classifier output");
        assert!(prediction < DatasetKind::Cifar10.classes());
        assert!(output.metrics.is_none(), "no per-layer simulation metrics");
    }

    #[test]
    fn predictions_are_deterministic_per_seed() {
        let engine = NativeEngine::new();
        let a = engine
            .execute(&batch(9, 4, SimOptions::baseline()))
            .unwrap();
        let b = engine
            .execute(&batch(9, 4, SimOptions::baseline()))
            .unwrap();
        assert_eq!(a.prediction, b.prediction);
        // The weight cache built the transformer once for both calls.
        assert_eq!(engine.models.stats().misses, 1);
        assert_eq!(engine.models.stats().hits, 1);
    }

    #[test]
    fn rejects_ecp_and_oversized_folds_with_typed_errors() {
        let engine = NativeEngine::with_config(NativeEngineConfig {
            max_folded_timesteps: 8,
            ..NativeEngineConfig::default()
        });
        assert_eq!(
            engine.execute(&batch(1, 4, SimOptions::with_ecp(6))),
            Err(EngineError::EcpUnsupported { engine: "native" })
        );
        assert_eq!(
            engine.execute(&batch(1, 16, SimOptions::baseline())),
            Err(EngineError::BatchTooLarge {
                engine: "native",
                folded_timesteps: 16,
                limit: 8
            })
        );
    }
}
