//! The default backend: the cycle-level Bishop accelerator simulator.

use std::sync::Arc;

use bishop_core::BishopSimulator;
use bishop_session::SessionState;

use crate::api::{
    EngineBatch, EngineDescriptor, EngineOutput, EngineSubstrate, InferenceEngine, StepEvent,
    StepSink, StreamedOutput,
};
use crate::cache::{CalibrationCache, ResultCache, ResultKey, WorkloadKey};
use crate::error::EngineError;
use crate::SIMULATOR_ENGINE;

/// [`InferenceEngine`] over the analytic Bishop chip simulator.
///
/// Execution is memoized at two levels, both shared across every worker
/// thread holding the engine: identical batches reuse the whole simulated
/// result ([`ResultCache`]), and batches sharing a workload but not options
/// reuse the synthesized activation trace ([`CalibrationCache`]). Both the
/// simulation and the caches are deterministic, so this engine is the one
/// the runtime's reproducible-report guarantee is stated for.
#[derive(Debug)]
pub struct SimulatorEngine {
    simulator: BishopSimulator,
    cache: Arc<CalibrationCache>,
    results: Arc<ResultCache>,
}

impl SimulatorEngine {
    /// Wraps a simulator with fresh caches.
    pub fn new(simulator: BishopSimulator) -> Self {
        Self::with_caches(
            simulator,
            Arc::new(CalibrationCache::new()),
            Arc::new(ResultCache::new()),
        )
    }

    /// Wraps a simulator sharing existing caches (e.g. warmed by a previous
    /// server or shared between serving stacks).
    pub fn with_caches(
        simulator: BishopSimulator,
        cache: Arc<CalibrationCache>,
        results: Arc<ResultCache>,
    ) -> Self {
        Self {
            simulator,
            cache,
            results,
        }
    }

    /// The simulated chip's hardware configuration.
    pub fn simulator(&self) -> &BishopSimulator {
        &self.simulator
    }

    /// The workload-synthesis cache backing this engine.
    pub fn cache(&self) -> &Arc<CalibrationCache> {
        &self.cache
    }

    /// The batch-result cache backing this engine.
    pub fn result_cache(&self) -> &Arc<ResultCache> {
        &self.results
    }
}

impl InferenceEngine for SimulatorEngine {
    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            name: SIMULATOR_ENGINE,
            substrate: EngineSubstrate::SimulatedAccelerator,
            supports_ecp: true,
            deterministic: true,
            measures_wall_clock: false,
            max_folded_timesteps: None,
            supports_streaming: true,
            // Memoized analytic simulation retires batches in microseconds
            // once warm; the calibration EWMA corrects from observations.
            seed_drain_ops_per_second: 5e9,
            simd_tier: None,
            description: "Cycle-level Bishop heterogeneous-core simulator with workload and \
                          result memoization",
        }
    }

    fn execute(&self, batch: &EngineBatch) -> Result<EngineOutput, EngineError> {
        let workload_key = WorkloadKey::new(&batch.config, batch.regime, batch.seed);
        let result_key = ResultKey {
            workload: workload_key,
            options: batch.options,
        };
        let metrics = self.results.get_or_simulate(result_key, || {
            let workload = self
                .cache
                .get_or_build(&batch.config, batch.regime, batch.seed);
            self.simulator
                .simulate_named(&workload, &batch.options, batch.config.name.clone())
        });
        Ok(EngineOutput::from_metrics(SIMULATOR_ENGINE, metrics))
    }

    fn execute_streaming(
        &self,
        batch: &EngineBatch,
        steps: usize,
        resume: Option<&SessionState>,
        sink: &mut dyn StepSink,
    ) -> Result<StreamedOutput, EngineError> {
        let done = match resume {
            Some(SessionState::Simulated { timesteps_done }) => *timesteps_done,
            // Simulated latency/energy cannot be continued from real
            // membrane potentials; refuse the cross-substrate resume typed.
            Some(SessionState::Native(_)) => {
                return Err(EngineError::StreamingUnsupported {
                    engine: SIMULATOR_ENGINE,
                })
            }
            None => 0,
        };
        let total_timesteps = done + steps;
        assert!(
            total_timesteps > 0,
            "a streaming execution must cover at least one timestep"
        );
        // Simulate the whole accumulated sequence under the session's base
        // configuration: both halves of a split sequence resolve to the
        // same memoized workload and result the single long request would,
        // so the continuation is bit-identical (and usually cache-warm).
        let accumulated = EngineBatch {
            config: batch.config.clone().with_timesteps(total_timesteps),
            ..batch.clone()
        };
        let output = self.execute(&accumulated)?;
        // The simulator has no timestep loop of its own; its progress unit
        // is the simulated layer, reported once the metrics exist.
        if let Some(metrics) = &output.metrics {
            let total = metrics.layers.len();
            for (index, _layer) in metrics.layers.iter().enumerate() {
                sink.on_step(&StepEvent {
                    index,
                    total,
                    unit: "layer",
                    spikes: 0,
                });
            }
        }
        Ok(StreamedOutput {
            output,
            state: SessionState::Simulated {
                timesteps_done: total_timesteps,
            },
            logits: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_bundle::TrainingRegime;
    use bishop_core::{BishopConfig, SimOptions};
    use bishop_model::{DatasetKind, ModelConfig};

    fn engine() -> SimulatorEngine {
        SimulatorEngine::new(BishopSimulator::new(BishopConfig::default()))
    }

    fn batch(seed: u64) -> EngineBatch {
        EngineBatch {
            config: ModelConfig::new("sim-engine", DatasetKind::Cifar10, 1, 4, 16, 32, 2),
            regime: TrainingRegime::Bsa,
            seed,
            options: SimOptions::baseline(),
            batch_size: 2,
            batch_id: 0,
        }
    }

    #[test]
    fn execute_is_deterministic_and_cached() {
        let engine = engine();
        let a = engine.execute(&batch(7)).expect("simulator never fails");
        let b = engine.execute(&batch(7)).expect("simulator never fails");
        assert_eq!(a, b);
        assert!(a.latency_seconds > 0.0);
        assert!(a.energy_mj > 0.0);
        assert!(a.metrics.is_some(), "simulator reports per-layer metrics");
        // Second identical call answered entirely from the result cache.
        assert_eq!(engine.result_cache().stats().hits, 1);
        assert_eq!(engine.cache().stats().misses, 1);
    }

    #[test]
    fn descriptor_accepts_ecp() {
        let engine = engine();
        assert!(engine.descriptor().supports_ecp);
        let mut b = batch(1);
        b.options = SimOptions::with_ecp(6);
        assert!(engine.descriptor().check(&b).is_ok());
        assert!(engine.execute(&b).is_ok());
    }
}
