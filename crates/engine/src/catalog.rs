//! The servable-model catalog.
//!
//! A [`CatalogEntry`] is the unit the whole request path shares: the gateway
//! resolves the client's `"model"` string to one, the runtime's
//! `InferenceRequest` carries it as an `Arc` (one allocation per entry for
//! the lifetime of the catalog — never a per-request `ModelConfig` clone),
//! and batch keys compare entries by content so identical models coalesce.

use std::sync::Arc;

use bishop_bundle::TrainingRegime;
use bishop_core::SimOptions;
use bishop_model::{DatasetKind, ModelConfig};

/// One servable model: the name clients submit plus the defaults requests
/// inherit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CatalogEntry {
    /// The name clients reference in `"model"`.
    pub name: String,
    /// Full architecture configuration.
    pub config: ModelConfig,
    /// Default calibrated training regime.
    pub regime: TrainingRegime,
    /// Default simulation options.
    pub options: SimOptions,
}

impl CatalogEntry {
    /// Builds an entry named after its configuration.
    pub fn new(config: ModelConfig, regime: TrainingRegime, options: SimOptions) -> Arc<Self> {
        Arc::new(Self {
            name: config.name.clone(),
            config,
            regime,
            options,
        })
    }
}

/// The set of models a serving stack offers.
#[derive(Debug, Clone, Default)]
pub struct ModelCatalog {
    entries: Vec<Arc<CatalogEntry>>,
}

impl ModelCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default serving catalog: the paper's two headline image models at
    /// serving scale — CIFAR-10 under BSA without pruning, ImageNet-100
    /// under BSA with ECP (θp = 6).
    pub fn serving_default() -> Self {
        let cifar = ModelConfig::new("cifar10-serve", DatasetKind::Cifar10, 2, 4, 64, 128, 4);
        let imagenet = ModelConfig::new(
            "imagenet100-serve",
            DatasetKind::ImageNet100,
            2,
            4,
            64,
            128,
            4,
        );
        Self::new()
            .with_entry(CatalogEntry::new(
                cifar,
                TrainingRegime::Bsa,
                SimOptions::baseline(),
            ))
            .with_entry(CatalogEntry::new(
                imagenet,
                TrainingRegime::Bsa,
                SimOptions::with_ecp(6),
            ))
    }

    /// Adds (or replaces, by name) an entry.
    pub fn with_entry(mut self, entry: Arc<CatalogEntry>) -> Self {
        self.entries.retain(|e| e.name != entry.name);
        self.entries.push(entry);
        self
    }

    /// Adds (or replaces) a model built from its parts.
    pub fn with_model(
        self,
        name: impl Into<String>,
        config: ModelConfig,
        regime: TrainingRegime,
        options: SimOptions,
    ) -> Self {
        self.with_entry(Arc::new(CatalogEntry {
            name: name.into(),
            config,
            regime,
            options,
        }))
    }

    /// Looks up a model by name; the returned `Arc` is what requests carry.
    pub fn get(&self, name: &str) -> Option<&Arc<CatalogEntry>> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The catalogued entries, in registration order.
    pub fn entries(&self) -> &[Arc<CatalogEntry>] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_default_lists_both_image_models() {
        let catalog = ModelCatalog::serving_default();
        assert_eq!(catalog.entries().len(), 2);
        let imagenet = catalog.get("imagenet100-serve").expect("catalogued");
        assert_eq!(imagenet.options, SimOptions::with_ecp(6));
        assert_eq!(imagenet.config.dataset, DatasetKind::ImageNet100);
        assert!(catalog.get("nope").is_none());
    }

    #[test]
    fn with_entry_replaces_by_name() {
        let catalog = ModelCatalog::serving_default().with_model(
            "cifar10-serve",
            ModelConfig::new("cifar10-serve", DatasetKind::Cifar10, 1, 2, 8, 16, 2),
            TrainingRegime::Baseline,
            SimOptions::baseline(),
        );
        assert_eq!(catalog.entries().len(), 2);
        assert_eq!(catalog.get("cifar10-serve").unwrap().config.blocks, 1);
    }

    #[test]
    fn lookups_share_the_entry_allocation() {
        let catalog = ModelCatalog::serving_default();
        let a = Arc::clone(catalog.get("cifar10-serve").unwrap());
        let b = Arc::clone(catalog.get("cifar10-serve").unwrap());
        assert!(Arc::ptr_eq(&a, &b), "no per-lookup cloning");
    }
}
