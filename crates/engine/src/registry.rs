//! The engine registry: the set of backends a serving stack exposes.

use std::sync::Arc;

use bishop_baseline::{EdgeGpuModel, PtbConfig, PtbSimulator};
use bishop_core::{BishopConfig, BishopSimulator};

use crate::api::{EngineDescriptor, InferenceEngine};
use crate::baseline::BaselineEngine;
use crate::cache::{CalibrationCache, ResultCache};
use crate::native::NativeEngine;
use crate::simulator::SimulatorEngine;

/// An ordered, name-addressed set of [`InferenceEngine`]s.
///
/// The first registered engine is the default (what requests that name no
/// engine run on). Registration replaces by name, so stacks can override a
/// stock backend with a custom one.
#[derive(Debug, Clone, Default)]
pub struct EngineRegistry {
    engines: Vec<Arc<dyn InferenceEngine>>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full serving set over shared caches: `simulator` (default),
    /// `native`, `ptb` and `gpu`.
    pub fn serving_default(
        hardware: &BishopConfig,
        cache: Arc<CalibrationCache>,
        results: Arc<ResultCache>,
    ) -> Self {
        Self::new()
            .with_engine(Arc::new(SimulatorEngine::with_caches(
                BishopSimulator::new(hardware.clone()),
                Arc::clone(&cache),
                results,
            )))
            .with_engine(Arc::new(NativeEngine::new()))
            .with_engine(Arc::new(BaselineEngine::ptb(
                PtbSimulator::new(PtbConfig::default()),
                cache,
            )))
            .with_engine(Arc::new(BaselineEngine::edge_gpu(
                EdgeGpuModel::jetson_nano(),
            )))
    }

    /// Adds (or replaces, by descriptor name) an engine. Replacement is
    /// in-place: overriding a stock backend keeps its position — in
    /// particular, overriding the first-registered engine keeps it the
    /// default.
    pub fn with_engine(mut self, engine: Arc<dyn InferenceEngine>) -> Self {
        let name = engine.descriptor().name;
        match self
            .engines
            .iter()
            .position(|e| e.descriptor().name == name)
        {
            Some(slot) => self.engines[slot] = engine,
            None => self.engines.push(engine),
        }
        self
    }

    /// Resolves an engine by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn InferenceEngine>> {
        self.engines.iter().find(|e| e.descriptor().name == name)
    }

    /// The default engine (first registered), if any.
    pub fn default_engine(&self) -> Option<&Arc<dyn InferenceEngine>> {
        self.engines.first()
    }

    /// The registered engines, in registration order.
    pub fn engines(&self) -> &[Arc<dyn InferenceEngine>] {
        &self.engines
    }

    /// Capability metadata of every registered engine, in order.
    pub fn descriptors(&self) -> Vec<EngineDescriptor> {
        self.engines.iter().map(|e| e.descriptor()).collect()
    }

    /// The registered engine names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.engines.iter().map(|e| e.descriptor().name).collect()
    }

    /// The default preference order `"auto"` requests resolve against:
    /// `native` first (real execution, highest fidelity), then the analytic
    /// `simulator` as the degradation target under pressure. Baseline
    /// engines (`ptb`, `gpu`) exist for explicit A/B comparison and are
    /// never auto-selected.
    pub fn default_auto_preference() -> [&'static str; 2] {
        [crate::NATIVE_ENGINE, crate::SIMULATOR_ENGINE]
    }

    /// The registered engines eligible for `"auto"` resolution, in the
    /// default preference order (most-preferred first). Engines outside the
    /// preference list are excluded.
    pub fn auto_candidates(&self) -> Vec<&Arc<dyn InferenceEngine>> {
        Self::default_auto_preference()
            .iter()
            .filter_map(|name| self.get(name))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> EngineRegistry {
        EngineRegistry::serving_default(
            &BishopConfig::default(),
            Arc::new(CalibrationCache::new()),
            Arc::new(ResultCache::new()),
        )
    }

    #[test]
    fn serving_default_registers_all_backends() {
        let registry = registry();
        assert_eq!(registry.names(), vec!["simulator", "native", "ptb", "gpu"]);
        assert_eq!(
            registry.default_engine().unwrap().descriptor().name,
            "simulator"
        );
        assert!(registry.get("native").is_some());
        assert!(registry.get("nonexistent").is_none());
    }

    #[test]
    fn auto_candidates_prefer_native_then_simulator() {
        let registry = registry();
        let names: Vec<&str> = registry
            .auto_candidates()
            .iter()
            .map(|e| e.descriptor().name)
            .collect();
        assert_eq!(names, vec!["native", "simulator"]);
        // A registry without a native backend degrades to simulator-only.
        let sim_only = EngineRegistry::new().with_engine(Arc::new(SimulatorEngine::new(
            BishopSimulator::new(BishopConfig::default()),
        )));
        let names: Vec<&str> = sim_only
            .auto_candidates()
            .iter()
            .map(|e| e.descriptor().name)
            .collect();
        assert_eq!(names, vec!["simulator"]);
        assert!(EngineRegistry::new().auto_candidates().is_empty());
    }

    #[test]
    fn with_engine_replaces_in_place() {
        let registry = registry();
        let replacement = Arc::new(NativeEngine::new());
        let registry = registry.with_engine(replacement);
        assert_eq!(registry.engines().len(), 4);
        // Replacement keeps the slot: order (and therefore the default
        // engine) is unchanged when overriding a stock backend.
        assert_eq!(registry.names(), vec!["simulator", "native", "ptb", "gpu"]);
        assert_eq!(
            registry.default_engine().unwrap().descriptor().name,
            "simulator"
        );
    }
}
