//! Baseline backends: the paper's comparison accelerators behind the same
//! [`InferenceEngine`] API, so the serving stack can A/B Bishop against them
//! on live traffic (the Fig. 12–13 end-to-end comparison, as a service).

use std::sync::Arc;

use bishop_baseline::{EdgeGpuModel, PtbSimulator};

use crate::api::{EngineBatch, EngineDescriptor, EngineOutput, EngineSubstrate, InferenceEngine};
use crate::cache::CalibrationCache;
use crate::error::EngineError;
use crate::{GPU_ENGINE, PTB_ENGINE};

/// Which baseline model backs the engine.
#[derive(Debug)]
enum Backend {
    /// Parallel Time Batching accelerator (HPCA'22), simulated layer by
    /// layer over the same synthesized workloads Bishop consumes. Boxed:
    /// the simulator's energy/memory tables dwarf the roofline variant.
    Ptb(Box<PtbSimulator>, Arc<CalibrationCache>),
    /// Jetson-Nano-class edge GPU, closed-form roofline over the model
    /// configuration (no trace needed).
    EdgeGpu(EdgeGpuModel),
}

/// [`InferenceEngine`] over one of the `crates/baseline` comparison models.
///
/// Neither baseline has an Error-Constrained-TTB-Pruning path (ECP is
/// Bishop's co-design), so batches requesting ECP fail with the typed
/// [`EngineError::EcpUnsupported`].
#[derive(Debug)]
pub struct BaselineEngine {
    backend: Backend,
}

impl BaselineEngine {
    /// The PTB accelerator baseline, sharing the given workload-synthesis
    /// cache (PTB consumes the same traces the Bishop simulator does).
    pub fn ptb(simulator: PtbSimulator, cache: Arc<CalibrationCache>) -> Self {
        Self {
            backend: Backend::Ptb(Box::new(simulator), cache),
        }
    }

    /// The edge-GPU roofline baseline.
    pub fn edge_gpu(model: EdgeGpuModel) -> Self {
        Self {
            backend: Backend::EdgeGpu(model),
        }
    }
}

impl InferenceEngine for BaselineEngine {
    fn descriptor(&self) -> EngineDescriptor {
        match &self.backend {
            Backend::Ptb(..) => EngineDescriptor {
                name: PTB_ENGINE,
                substrate: EngineSubstrate::SimulatedAccelerator,
                supports_ecp: false,
                deterministic: true,
                measures_wall_clock: false,
                max_folded_timesteps: None,
                supports_streaming: false,
                seed_drain_ops_per_second: 4e9,
                simd_tier: None,
                description: "Parallel Time Batching (HPCA'22) homogeneous systolic-array \
                              baseline over the same synthesized workloads",
            },
            Backend::EdgeGpu(_) => EngineDescriptor {
                name: GPU_ENGINE,
                substrate: EngineSubstrate::AnalyticModel,
                supports_ecp: false,
                deterministic: true,
                measures_wall_clock: false,
                max_folded_timesteps: None,
                supports_streaming: false,
                // Closed-form roofline: evaluation is effectively free.
                seed_drain_ops_per_second: 8e9,
                simd_tier: None,
                description: "Jetson-Nano-class edge-GPU roofline baseline (dense FP16, \
                              per-timestep launch overhead)",
            },
        }
    }

    fn execute(&self, batch: &EngineBatch) -> Result<EngineOutput, EngineError> {
        self.descriptor().check(batch)?;
        match &self.backend {
            Backend::Ptb(simulator, cache) => {
                let workload = cache.get_or_build(&batch.config, batch.regime, batch.seed);
                let metrics = Arc::new(simulator.simulate(&workload));
                Ok(EngineOutput::from_metrics(PTB_ENGINE, metrics))
            }
            Backend::EdgeGpu(model) => {
                let run = model.simulate(&batch.config);
                Ok(EngineOutput {
                    engine: GPU_ENGINE,
                    latency_seconds: run.latency_seconds,
                    energy_mj: run.energy_mj,
                    // The roofline has no cycle notion; express its busy
                    // time on the nominal GPU clock for cross-engine parity.
                    cycles: (run.latency_seconds * 921.6e6) as u64,
                    metrics: None,
                    wall_seconds: None,
                    prediction: None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_baseline::PtbConfig;
    use bishop_bundle::TrainingRegime;
    use bishop_core::SimOptions;
    use bishop_model::{DatasetKind, ModelConfig};

    fn batch(options: SimOptions) -> EngineBatch {
        EngineBatch {
            config: ModelConfig::new("baseline-engine", DatasetKind::Cifar10, 1, 4, 16, 32, 2),
            regime: TrainingRegime::Bsa,
            seed: 5,
            options,
            batch_size: 1,
            batch_id: 0,
        }
    }

    #[test]
    fn ptb_executes_and_reports_layer_metrics() {
        let engine = BaselineEngine::ptb(
            PtbSimulator::new(PtbConfig::default()),
            Arc::new(CalibrationCache::new()),
        );
        let output = engine.execute(&batch(SimOptions::baseline())).unwrap();
        assert_eq!(output.engine, "ptb");
        assert!(output.latency_seconds > 0.0);
        assert!(output.metrics.is_some());
        assert_eq!(
            engine.execute(&batch(SimOptions::with_ecp(4))),
            Err(EngineError::EcpUnsupported { engine: "ptb" })
        );
    }

    #[test]
    fn gpu_roofline_is_deterministic_without_metrics() {
        let engine = BaselineEngine::edge_gpu(EdgeGpuModel::jetson_nano());
        let a = engine.execute(&batch(SimOptions::baseline())).unwrap();
        let b = engine.execute(&batch(SimOptions::baseline())).unwrap();
        assert_eq!(a, b);
        assert!(a.latency_seconds > 0.0);
        assert!(a.energy_mj > 0.0);
        assert!(a.cycles > 0);
        assert!(a.metrics.is_none());
    }
}
