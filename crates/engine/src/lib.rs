//! # bishop-engine
//!
//! The **pluggable inference-engine layer** of the Bishop serving stack: one
//! [`InferenceEngine`] trait between the batching runtime above and the
//! execution substrates below, so the same spiking-transformer traffic can
//! be mapped onto heterogeneous backends — the paper's core premise, turned
//! into an API.
//!
//! Backends shipped here:
//!
//! * [`SimulatorEngine`] (`"simulator"`, the default) — the cycle-level
//!   Bishop accelerator simulator with two-level result/workload
//!   memoization; deterministic, ECP-capable.
//! * [`NativeEngine`] (`"native"`) — the functional spiking transformer
//!   executed **for real** on the host CPU via the word-parallel popcount
//!   kernels, reporting measured wall-clock and a real class prediction.
//! * [`BaselineEngine`] (`"ptb"`, `"gpu"`) — the paper's comparison models
//!   (the PTB accelerator and a Jetson-class edge-GPU roofline) for A/B
//!   serving against Bishop.
//!
//! Engines advertise capabilities through an [`EngineDescriptor`] and fail
//! with the typed [`EngineError`] enum (stable machine-readable codes via
//! [`EngineError::code`]); an [`EngineRegistry`] resolves the [`EngineName`]
//! a request carries to a backend. The [`ModelCatalog`] of servable
//! [`CatalogEntry`]s lives here too, so requests throughout the stack share
//! `Arc<CatalogEntry>` handles instead of cloning model configurations.
//!
//! ```
//! use bishop_engine::{EngineBatch, EngineRegistry, CalibrationCache, ResultCache};
//! use bishop_core::{BishopConfig, SimOptions};
//! use bishop_bundle::TrainingRegime;
//! use bishop_model::{DatasetKind, ModelConfig};
//! use std::sync::Arc;
//!
//! let registry = EngineRegistry::serving_default(
//!     &BishopConfig::default(),
//!     Arc::new(CalibrationCache::new()),
//!     Arc::new(ResultCache::new()),
//! );
//! let batch = EngineBatch {
//!     config: ModelConfig::new("demo", DatasetKind::Cifar10, 1, 4, 16, 32, 2),
//!     regime: TrainingRegime::Bsa,
//!     seed: 7,
//!     options: SimOptions::baseline(),
//!     batch_size: 1,
//!     batch_id: 0,
//! };
//! for engine in registry.engines() {
//!     let output = engine.execute(&batch).expect("baseline options run everywhere");
//!     assert!(output.latency_seconds > 0.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod baseline;
pub mod cache;
pub mod catalog;
pub mod error;
pub mod native;
pub mod registry;
pub mod simulator;

pub use api::{
    EngineBatch, EngineDescriptor, EngineName, EngineOutput, EngineSubstrate, InferenceEngine,
    NullStepSink, StepEvent, StepSink, StreamedOutput,
};
pub use baseline::BaselineEngine;
pub use cache::{CacheStats, CalibrationCache, ResultCache, ResultKey, WorkloadKey};
pub use catalog::{CatalogEntry, ModelCatalog};
pub use error::EngineError;
pub use native::{NativeEngine, NativeEngineConfig};
pub use registry::EngineRegistry;
pub use simulator::SimulatorEngine;

// Re-exported so engine wrappers and callers can name the session state the
// streaming API carries without depending on `bishop-session` directly.
pub use bishop_session::SessionState;

/// Name of the default cycle-level Bishop simulator backend.
pub const SIMULATOR_ENGINE: &str = "simulator";
/// Name of the host-CPU functional-execution backend.
pub const NATIVE_ENGINE: &str = "native";
/// Name of the PTB baseline-accelerator backend.
pub const PTB_ENGINE: &str = "ptb";
/// Name of the edge-GPU roofline backend.
pub const GPU_ENGINE: &str = "gpu";
/// The pseudo-engine name requesting deadline-aware autoselection: no
/// backend registers under this name; the serving runtime's dispatcher
/// resolves it to a concrete engine at admission time.
pub const AUTO_ENGINE: &str = "auto";
