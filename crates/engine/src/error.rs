//! Typed execution errors.
//!
//! Engines fail with a closed enum instead of ad-hoc strings so callers can
//! branch on the cause and the gateway can publish stable machine-readable
//! error codes ([`EngineError::code`]).

use std::fmt;

/// Why an engine refused (or failed) to execute a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The engine has no Error-Constrained-TTB-Pruning path, but the batch
    /// options request ECP.
    EcpUnsupported {
        /// The refusing engine.
        engine: &'static str,
    },
    /// The batch's folded timestep axis exceeds the engine's capacity.
    BatchTooLarge {
        /// The refusing engine.
        engine: &'static str,
        /// Folded timesteps of the offending batch.
        folded_timesteps: usize,
        /// The engine's declared limit.
        limit: usize,
    },
}

impl EngineError {
    /// The engine the error originated from.
    pub fn engine(&self) -> &'static str {
        match self {
            EngineError::EcpUnsupported { engine } | EngineError::BatchTooLarge { engine, .. } => {
                engine
            }
        }
    }

    /// A stable machine-readable code for wire protocols. These strings are
    /// API: clients branch on them, so variants keep their code forever.
    pub fn code(&self) -> &'static str {
        match self {
            EngineError::EcpUnsupported { .. } => "ecp_unsupported",
            EngineError::BatchTooLarge { .. } => "batch_too_large",
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EcpUnsupported { engine } => {
                write!(f, "engine \"{engine}\" does not support ECP pruning options")
            }
            EngineError::BatchTooLarge {
                engine,
                folded_timesteps,
                limit,
            } => write!(
                f,
                "engine \"{engine}\" caps batches at {limit} folded timesteps, got {folded_timesteps}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_accessors_are_stable() {
        let ecp = EngineError::EcpUnsupported { engine: "native" };
        assert_eq!(ecp.code(), "ecp_unsupported");
        assert_eq!(ecp.engine(), "native");
        assert!(ecp.to_string().contains("native"));

        let big = EngineError::BatchTooLarge {
            engine: "native",
            folded_timesteps: 99,
            limit: 8,
        };
        assert_eq!(big.code(), "batch_too_large");
        assert!(big.to_string().contains("99"));
    }
}
