//! Typed execution errors.
//!
//! Engines fail with a closed enum instead of ad-hoc strings so callers can
//! branch on the cause and the gateway can publish stable machine-readable
//! error codes ([`EngineError::code`]).

use std::fmt;

/// Why an engine refused (or failed) to execute a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The engine has no Error-Constrained-TTB-Pruning path, but the batch
    /// options request ECP.
    EcpUnsupported {
        /// The refusing engine.
        engine: &'static str,
    },
    /// The batch's folded timestep axis exceeds the engine's capacity.
    BatchTooLarge {
        /// The refusing engine.
        engine: &'static str,
        /// Folded timesteps of the offending batch.
        folded_timesteps: usize,
        /// The engine's declared limit.
        limit: usize,
    },
    /// A transient execution fault: the batch was valid but this attempt
    /// failed for a reason unrelated to the request (injected fault,
    /// substrate hiccup). Retrying the same batch may succeed.
    Transient {
        /// The failing engine.
        engine: &'static str,
    },
    /// The engine panicked while executing the batch. The runtime contains
    /// the panic and resolves every batch-mate with this error; like
    /// [`EngineError::Transient`] it says nothing about the request itself.
    Panicked {
        /// The engine whose execution panicked.
        engine: &'static str,
    },
    /// The engine has no stateful/streaming execution path: it cannot emit
    /// per-step events or accept an imported session state. Deterministic
    /// like the other capability refusals — retrying never helps.
    StreamingUnsupported {
        /// The refusing engine.
        engine: &'static str,
    },
}

impl EngineError {
    /// The engine the error originated from.
    pub fn engine(&self) -> &'static str {
        match self {
            EngineError::EcpUnsupported { engine }
            | EngineError::BatchTooLarge { engine, .. }
            | EngineError::Transient { engine }
            | EngineError::Panicked { engine }
            | EngineError::StreamingUnsupported { engine } => engine,
        }
    }

    /// A stable machine-readable code for wire protocols. These strings are
    /// API: clients branch on them, so variants keep their code forever.
    pub fn code(&self) -> &'static str {
        match self {
            EngineError::EcpUnsupported { .. } => "ecp_unsupported",
            EngineError::BatchTooLarge { .. } => "batch_too_large",
            EngineError::Transient { .. } => "engine_transient",
            EngineError::Panicked { .. } => "engine_panicked",
            EngineError::StreamingUnsupported { .. } => "streaming_unsupported",
        }
    }

    /// Whether retrying the identical batch can plausibly succeed.
    ///
    /// Capability refusals ([`EngineError::EcpUnsupported`],
    /// [`EngineError::BatchTooLarge`]) are deterministic properties of the
    /// request — retrying them only burns budget — while execution faults
    /// ([`EngineError::Transient`], [`EngineError::Panicked`]) describe one
    /// failed attempt. The runtime's retry policy and circuit breakers key
    /// off this split: only retryable errors count as engine health faults.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            EngineError::Transient { .. } | EngineError::Panicked { .. }
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EcpUnsupported { engine } => {
                write!(f, "engine \"{engine}\" does not support ECP pruning options")
            }
            EngineError::BatchTooLarge {
                engine,
                folded_timesteps,
                limit,
            } => write!(
                f,
                "engine \"{engine}\" caps batches at {limit} folded timesteps, got {folded_timesteps}"
            ),
            EngineError::Transient { engine } => {
                write!(f, "engine \"{engine}\" hit a transient execution fault")
            }
            EngineError::Panicked { engine } => {
                write!(f, "engine \"{engine}\" panicked while executing the batch")
            }
            EngineError::StreamingUnsupported { engine } => {
                write!(f, "engine \"{engine}\" has no streaming/stateful execution path")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_accessors_are_stable() {
        let ecp = EngineError::EcpUnsupported { engine: "native" };
        assert_eq!(ecp.code(), "ecp_unsupported");
        assert_eq!(ecp.engine(), "native");
        assert!(ecp.to_string().contains("native"));

        let big = EngineError::BatchTooLarge {
            engine: "native",
            folded_timesteps: 99,
            limit: 8,
        };
        assert_eq!(big.code(), "batch_too_large");
        assert!(big.to_string().contains("99"));

        let transient = EngineError::Transient { engine: "native" };
        assert_eq!(transient.code(), "engine_transient");
        assert_eq!(transient.engine(), "native");

        let panicked = EngineError::Panicked { engine: "native" };
        assert_eq!(panicked.code(), "engine_panicked");
        assert_eq!(panicked.engine(), "native");

        let streaming = EngineError::StreamingUnsupported { engine: "ptb" };
        assert_eq!(streaming.code(), "streaming_unsupported");
        assert_eq!(streaming.engine(), "ptb");
        assert!(streaming.to_string().contains("streaming"));
    }

    #[test]
    fn only_execution_faults_are_retryable() {
        assert!(!EngineError::EcpUnsupported { engine: "e" }.retryable());
        assert!(!EngineError::BatchTooLarge {
            engine: "e",
            folded_timesteps: 9,
            limit: 8
        }
        .retryable());
        assert!(EngineError::Transient { engine: "e" }.retryable());
        assert!(EngineError::Panicked { engine: "e" }.retryable());
        assert!(!EngineError::StreamingUnsupported { engine: "e" }.retryable());
    }
}
