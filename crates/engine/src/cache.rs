//! Memoizing caches for workload synthesis and batch simulation.
//!
//! Building a [`ModelWorkload`] is the most expensive step of serving a
//! request: every layer's spike trace is synthesized from the dataset
//! calibration. Traffic is heavily repetitive — retries, replays and
//! identically-seeded batches recur — so the runtime memoizes synthesis in a
//! [`CalibrationCache`] keyed on `(ModelConfig, TrainingRegime, seed)`, and,
//! because the simulator is a pure function of `(workload, options)`, whole
//! batch results in a [`ResultCache`] one level above it.
//!
//! Both caches build each key exactly once: a lookup racing an in-flight
//! build blocks on it and is counted as a hit. This keeps the hit/miss
//! counters deterministic for a given traffic trace no matter how many
//! workers hammer the caches concurrently — the runtime's determinism
//! guarantee includes the cache statistics it reports. Both caches are also
//! bounded (FIFO eviction of the oldest completed entry) so a long-lived
//! server cannot grow without limit; note that *when the working set
//! exceeds the bound*, eviction order — and therefore the hit/miss split —
//! can vary with worker timing.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

use bishop_bundle::{DatasetCalibration, TrainingRegime};
use bishop_core::{RunMetrics, SimOptions};
use bishop_model::{ModelConfig, ModelWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default entry bound of a [`CalibrationCache`] (full workloads are the
/// largest objects the runtime holds).
pub const DEFAULT_WORKLOAD_CAPACITY: usize = 256;

/// Default entry bound of a [`ResultCache`] (per-layer metric vectors;
/// much smaller than workloads).
pub const DEFAULT_RESULT_CAPACITY: usize = 4096;

/// Cache key of one synthesized workload.
///
/// Keys embed the full [`ModelConfig`] (which is `Eq + Hash`) rather than a
/// mirrored subset of its fields, so new configuration fields can never
/// silently alias cache entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkloadKey {
    /// The model configuration.
    pub config: ModelConfig,
    /// The training regime the trace statistics come from.
    pub regime: TrainingRegime,
    /// The trace seed.
    pub seed: u64,
}

impl WorkloadKey {
    /// Builds the key for `(config, regime, seed)`.
    pub fn new(config: &ModelConfig, regime: TrainingRegime, seed: u64) -> Self {
        Self {
            config: config.clone(),
            regime,
            seed,
        }
    }
}

/// Cache key of one simulated batch: the workload plus the full simulation
/// options that shaped the run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// The workload identity.
    pub workload: WorkloadKey,
    /// The simulation options applied.
    pub options: SimOptions,
}

/// Hit/miss counters of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of lookups answered from the cache (including lookups that
    /// waited on an in-flight build of the same key).
    pub hits: u64,
    /// Number of lookups that had to build the value.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference `self - earlier` (for per-run accounting on a
    /// long-lived cache).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

#[derive(Debug)]
enum Slot<V> {
    /// A thread is building this value.
    Building,
    /// The value is available.
    Ready(Arc<V>),
}

#[derive(Debug)]
struct OnceMapState<K, V> {
    entries: HashMap<K, Slot<V>>,
    /// Completed keys in insertion order (eviction order).
    order: VecDeque<K>,
    hits: u64,
    misses: u64,
}

/// A bounded, concurrent, build-each-key-exactly-once memoization map. The
/// map lock is not held while building, so distinct keys build in parallel;
/// lookups of a key under construction block until it is ready and count as
/// hits. When the number of completed entries exceeds `capacity`, the oldest
/// completed entry is evicted (in-flight builds are never evicted).
///
/// Crate-visible so other engines (e.g. the native backend's weight cache)
/// can reuse the build-once semantics without re-deriving them.
#[derive(Debug)]
pub(crate) struct OnceMap<K, V> {
    state: Mutex<OnceMapState<K, V>>,
    ready: Condvar,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> OnceMap<K, V> {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Self {
            state: Mutex::new(OnceMapState {
                entries: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    pub(crate) fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        {
            let mut state = self.state.lock().expect("cache lock");
            loop {
                match state.entries.get(&key) {
                    Some(Slot::Ready(value)) => {
                        let value = Arc::clone(value);
                        state.hits += 1;
                        return value;
                    }
                    Some(Slot::Building) => {
                        state = self.ready.wait(state).expect("cache lock");
                    }
                    None => {
                        state.entries.insert(key.clone(), Slot::Building);
                        state.misses += 1;
                        break;
                    }
                }
            }
        }

        // If `build` panics, the guard removes the Building slot and wakes
        // every waiter so they retry (or observe the panic in their own
        // build) instead of blocking forever on an orphaned reservation.
        let mut guard = BuildGuard {
            map: self,
            key: Some(key.clone()),
        };
        let value = Arc::new(build());
        let mut state = self.state.lock().expect("cache lock");
        guard.key = None;
        state
            .entries
            .insert(key.clone(), Slot::Ready(Arc::clone(&value)));
        state.order.push_back(key);
        while state.order.len() > self.capacity {
            if let Some(oldest) = state.order.pop_front() {
                state.entries.remove(&oldest);
            }
        }
        drop(state);
        self.ready.notify_all();
        value
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("cache lock");
        CacheStats {
            hits: state.hits,
            misses: state.misses,
        }
    }

    fn len(&self) -> usize {
        self.state.lock().expect("cache lock").entries.len()
    }

    fn clear(&self) {
        let mut state = self.state.lock().expect("cache lock");
        // Keep in-flight reservations: their builders will insert Ready
        // entries when they finish.
        state
            .entries
            .retain(|_, slot| matches!(slot, Slot::Building));
        state.order.clear();
    }
}

/// Removes an orphaned `Building` reservation if the build panics.
struct BuildGuard<'a, K: Eq + Hash + Clone, V> {
    map: &'a OnceMap<K, V>,
    key: Option<K>,
}

impl<K: Eq + Hash + Clone, V> Drop for BuildGuard<'_, K, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            // The build closure runs without the map lock held, so the lock
            // cannot be poisoned by the panic unwinding through us.
            if let Ok(mut state) = self.map.state.lock() {
                state.entries.remove(&key);
            }
            self.map.ready.notify_all();
        }
    }
}

/// Thread-safe memoizing store of synthesized workloads.
#[derive(Debug)]
pub struct CalibrationCache {
    map: OnceMap<WorkloadKey, ModelWorkload>,
}

impl Default for CalibrationCache {
    fn default() -> Self {
        Self::bounded(DEFAULT_WORKLOAD_CAPACITY)
    }
}

impl CalibrationCache {
    /// Creates a cache with the default entry bound
    /// ([`DEFAULT_WORKLOAD_CAPACITY`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache evicting (FIFO) beyond `capacity` entries.
    pub fn bounded(capacity: usize) -> Self {
        Self {
            map: OnceMap::with_capacity(capacity),
        }
    }

    /// Returns the workload for `(config, regime, seed)`, synthesizing and
    /// memoizing it on first use.
    pub fn get_or_build(
        &self,
        config: &ModelConfig,
        regime: TrainingRegime,
        seed: u64,
    ) -> Arc<ModelWorkload> {
        self.map
            .get_or_build(WorkloadKey::new(config, regime, seed), || {
                synthesize(config, regime, seed)
            })
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.map.stats()
    }

    /// Number of memoized (or in-flight) workloads.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized workload (counters are kept).
    pub fn clear(&self) {
        self.map.clear()
    }
}

/// Thread-safe memoizing store of simulated batch results.
///
/// The simulator is deterministic: identical `(workload, options)` pairs
/// produce identical [`RunMetrics`]. Replayed or retried batches therefore
/// skip simulation entirely — the serving-path analogue of an idempotent
/// response cache.
#[derive(Debug)]
pub struct ResultCache {
    map: OnceMap<ResultKey, RunMetrics>,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::bounded(DEFAULT_RESULT_CAPACITY)
    }
}

impl ResultCache {
    /// Creates a cache with the default entry bound
    /// ([`DEFAULT_RESULT_CAPACITY`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache evicting (FIFO) beyond `capacity` entries.
    pub fn bounded(capacity: usize) -> Self {
        Self {
            map: OnceMap::with_capacity(capacity),
        }
    }

    /// Returns the metrics for `key`, running `simulate` and memoizing the
    /// result on first use.
    pub fn get_or_simulate(
        &self,
        key: ResultKey,
        simulate: impl FnOnce() -> RunMetrics,
    ) -> Arc<RunMetrics> {
        self.map.get_or_build(key, simulate)
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.map.stats()
    }

    /// Number of memoized (or in-flight) results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized result (counters are kept).
    pub fn clear(&self) {
        self.map.clear()
    }
}

/// Builds a calibrated workload: the dataset's [`DatasetCalibration`] picks
/// the trace statistics for `regime`, and `seed` drives the deterministic
/// trace synthesis.
pub fn synthesize(config: &ModelConfig, regime: TrainingRegime, seed: u64) -> ModelWorkload {
    let calibration = DatasetCalibration::for_model(config);
    let spec = calibration.spec(regime);
    let mut rng = StdRng::seed_from_u64(seed);
    ModelWorkload::synthetic(config, spec, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_model::DatasetKind;

    fn config() -> ModelConfig {
        ModelConfig::new("cache-test", DatasetKind::Cifar10, 1, 2, 16, 32, 2)
    }

    #[test]
    fn second_identical_request_hits_the_cache() {
        let cache = CalibrationCache::new();
        let first = cache.get_or_build(&config(), TrainingRegime::Bsa, 7);
        let second = cache.get_or_build(&config(), TrainingRegime::Bsa, 7);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second lookup must reuse the entry"
        );
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_seed_regime_or_config_miss() {
        let cache = CalibrationCache::new();
        cache.get_or_build(&config(), TrainingRegime::Bsa, 7);
        cache.get_or_build(&config(), TrainingRegime::Bsa, 8);
        cache.get_or_build(&config(), TrainingRegime::Baseline, 7);
        cache.get_or_build(&config().with_timesteps(4), TrainingRegime::Bsa, 7);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 4 });
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn concurrent_same_key_lookups_build_once() {
        let cache = Arc::new(CalibrationCache::new());
        let results: Vec<Arc<ModelWorkload>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    scope.spawn(move || cache.get_or_build(&config(), TrainingRegime::Bsa, 3))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        for pair in results.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 7, misses: 1 },
            "exactly one build regardless of racing lookups"
        );
    }

    #[test]
    fn result_cache_skips_repeat_simulation() {
        let cache = ResultCache::new();
        let key = ResultKey {
            workload: WorkloadKey::new(&config(), TrainingRegime::Bsa, 5),
            options: SimOptions::with_ecp(6),
        };
        let mut simulations = 0;
        for _ in 0..3 {
            cache.get_or_simulate(key.clone(), || {
                simulations += 1;
                RunMetrics::new("test", 500e6)
            });
        }
        assert_eq!(simulations, 1, "only the first lookup simulates");
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
        // Different options are a different result.
        let other = ResultKey {
            options: SimOptions::baseline(),
            ..key
        };
        cache.get_or_simulate(other, || RunMetrics::new("test", 500e6));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn bounded_cache_evicts_oldest_first() {
        let cache = CalibrationCache::bounded(2);
        cache.get_or_build(&config(), TrainingRegime::Bsa, 1);
        cache.get_or_build(&config(), TrainingRegime::Bsa, 2);
        cache.get_or_build(&config(), TrainingRegime::Bsa, 3); // evicts seed 1
        assert_eq!(cache.len(), 2);
        // Seed 1 was evicted: this lookup is a miss again.
        cache.get_or_build(&config(), TrainingRegime::Bsa, 1);
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 0, misses: 4 },
            "evicted entries rebuild"
        );
        // Seed 3 survived (it was newer).
        cache.get_or_build(&config(), TrainingRegime::Bsa, 3);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = CalibrationCache::new();
        cache.get_or_build(&config(), TrainingRegime::Bsa, 1);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        cache.get_or_build(&config(), TrainingRegime::Bsa, 1);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn panicking_build_releases_waiters() {
        let cache = Arc::new(ResultCache::new());
        let key = ResultKey {
            workload: WorkloadKey::new(&config(), TrainingRegime::Bsa, 9),
            options: SimOptions::baseline(),
        };
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_simulate(key.clone(), || panic!("synthetic build failure"));
        }));
        assert!(panicked.is_err());
        // The reservation is gone: a second lookup builds successfully
        // instead of deadlocking on an orphaned Building slot.
        let metrics = cache.get_or_simulate(key, || RunMetrics::new("recovered", 500e6));
        assert_eq!(metrics.accelerator, "recovered");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize(&config(), TrainingRegime::Baseline, 42);
        let b = synthesize(&config(), TrainingRegime::Baseline, 42);
        assert_eq!(a, b);
        let c = synthesize(&config(), TrainingRegime::Baseline, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn stats_since_diffs_counters() {
        let before = CacheStats { hits: 2, misses: 5 };
        let after = CacheStats { hits: 6, misses: 7 };
        assert_eq!(after.since(&before), CacheStats { hits: 4, misses: 2 });
        assert!((CacheStats { hits: 3, misses: 1 }.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
