//! The [`InferenceEngine`] trait and the types flowing across it.
//!
//! An engine is one *execution substrate* for a batch of spiking-transformer
//! inference work: the Bishop accelerator simulator, the host CPU running the
//! functional model on the word-parallel kernels, or one of the paper's
//! baseline analytic models. The serving runtime is generic over this trait —
//! batching, admission control and reporting never know which substrate a
//! batch lands on.

use std::fmt;
use std::sync::Arc;

use bishop_bundle::TrainingRegime;
use bishop_core::{RunMetrics, SimOptions};
use bishop_model::ModelConfig;
use bishop_session::SessionState;

use crate::error::EngineError;

/// The name a client (or the runtime) selects an engine by.
///
/// A cheap-to-clone, hashable string handle: requests carry one, batch keys
/// embed one (requests naming different engines must never share a batch),
/// and the [`EngineRegistry`](crate::EngineRegistry) resolves one to a
/// backend.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EngineName(Arc<str>);

impl EngineName {
    /// Wraps a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Self(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The default engine: the Bishop accelerator simulator.
    pub fn simulator() -> Self {
        Self::new(crate::SIMULATOR_ENGINE)
    }

    /// The native CPU engine (word-parallel functional forward pass).
    pub fn native() -> Self {
        Self::new(crate::NATIVE_ENGINE)
    }

    /// The autoselection pseudo-engine: the serving runtime's dispatcher
    /// resolves it to a concrete engine whose predicted completion meets
    /// the request's deadline. No backend registers under this name.
    pub fn auto() -> Self {
        Self::new(crate::AUTO_ENGINE)
    }

    /// Whether this is the autoselection pseudo-engine name.
    pub fn is_auto(&self) -> bool {
        self.as_str() == crate::AUTO_ENGINE
    }
}

impl Default for EngineName {
    fn default() -> Self {
        Self::simulator()
    }
}

impl fmt::Display for EngineName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for EngineName {
    fn from(name: &str) -> Self {
        Self::new(name)
    }
}

/// Which kind of substrate an engine executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineSubstrate {
    /// A cycle-level analytic simulation of the Bishop accelerator.
    SimulatedAccelerator,
    /// The host CPU actually executing the functional model.
    HostCpu,
    /// A closed-form analytic model (roofline / baseline accelerator).
    AnalyticModel,
}

impl EngineSubstrate {
    /// A stable lowercase label for wire encodings.
    pub fn label(&self) -> &'static str {
        match self {
            EngineSubstrate::SimulatedAccelerator => "simulated_accelerator",
            EngineSubstrate::HostCpu => "host_cpu",
            EngineSubstrate::AnalyticModel => "analytic_model",
        }
    }
}

/// Capability metadata describing one engine backend.
///
/// The descriptor is the contract half of the API: callers use it to route
/// work an engine can actually execute ([`EngineDescriptor::check`]) and the
/// gateway publishes it verbatim on `GET /v1/engines`.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineDescriptor {
    /// Registry name clients select the engine by.
    pub name: &'static str,
    /// What the engine runs on.
    pub substrate: EngineSubstrate,
    /// Whether the engine honours Error-Constrained TTB Pruning options.
    pub supports_ecp: bool,
    /// Whether identical batches always produce identical outputs (the
    /// runtime's determinism guarantee only covers deterministic engines).
    pub deterministic: bool,
    /// Whether [`EngineOutput::wall_seconds`] carries a real host
    /// measurement (as opposed to simulated/analytic latency only).
    pub measures_wall_clock: bool,
    /// Upper bound on the folded timestep axis of one batch, if the engine
    /// has one (`None` = unbounded).
    pub max_folded_timesteps: Option<usize>,
    /// Whether the engine implements
    /// [`InferenceEngine::execute_streaming`] — per-step progress events
    /// and exported session state. The gateway preflights streamed and
    /// session-bound requests against this flag so refusals happen before
    /// any response bytes are committed to the wire.
    pub supports_streaming: bool,
    /// A priori estimate of the dense operations per second this engine
    /// retires, used to *seed* the serving runtime's per-engine drain-rate
    /// calibration before any batch has completed. The runtime's online
    /// EWMA of observed throughput replaces the seed as traffic flows; the
    /// seed only has to be the right order of magnitude.
    pub seed_drain_ops_per_second: f64,
    /// The SIMD kernel tier the engine's compute runs on (`"scalar"`,
    /// `"neon"`, `"avx2"`, `"avx512"`), or `None` for engines that do not
    /// execute the functional kernels (simulators / analytic models).
    /// Published on `GET /v1/engines` so operators can see which popcount
    /// path a deployment resolved to.
    pub simd_tier: Option<&'static str>,
    /// One-line human description.
    pub description: &'static str,
}

impl EngineDescriptor {
    /// Checks whether this engine can execute `batch`, returning the typed
    /// error a call to [`InferenceEngine::execute`] would fail with.
    pub fn check(&self, batch: &EngineBatch) -> Result<(), EngineError> {
        if !self.supports_ecp && batch.options.ecp_threshold.is_some() {
            return Err(EngineError::EcpUnsupported { engine: self.name });
        }
        if let Some(limit) = self.max_folded_timesteps {
            if batch.config.timesteps > limit {
                return Err(EngineError::BatchTooLarge {
                    engine: self.name,
                    folded_timesteps: batch.config.timesteps,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Whether the engine supports the simulation options at all.
    pub fn supports_options(&self, options: &SimOptions) -> bool {
        self.supports_ecp || options.ecp_threshold.is_none()
    }

    /// Whether the engine can execute requests for `config` under `options`
    /// even as a singleton batch — options support plus the fold limit
    /// against the model's own timestep count. This is the per-entry engine
    /// support the gateway reports on `/v1/models` and preflights on
    /// `/v1/infer`. The comparison uses the unpadded timestep count (this
    /// layer does not know the runtime's bundle shape); a model landing in
    /// the sliver between the limit and the last bundle multiple below it
    /// passes here and surfaces the engine's typed refusal at execution.
    pub fn supports_model(&self, config: &ModelConfig, options: &SimOptions) -> bool {
        self.supports_options(options)
            && self
                .max_folded_timesteps
                .is_none_or(|limit| config.timesteps <= limit)
    }
}

/// One batch of compatible inference work, in substrate-neutral form.
///
/// The runtime folds the batch dimension into the timestep axis before the
/// engine ever sees it: `config` is the *batched* model configuration (with
/// the Token-Time-Bundle-padded timestep count), `seed` is the combined
/// deterministic trace seed, and `batch_size` records how many requests ride
/// the batch (engines may use it to attribute per-request shares).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineBatch {
    /// Batched (timestep-folded) model configuration.
    pub config: ModelConfig,
    /// Calibrated training regime of the traffic.
    pub regime: TrainingRegime,
    /// Combined deterministic seed of the batch's activation trace.
    pub seed: u64,
    /// Simulation options shared by every rider.
    pub options: SimOptions,
    /// Number of requests folded into the batch.
    pub batch_size: usize,
    /// Globally unique id of the batch — the *batch span id* request
    /// traces share with their batch-mates. Purely diagnostic: it is not
    /// part of any memoization key and engines must not let it influence
    /// execution.
    pub batch_id: u64,
}

/// What an engine produced for one batch.
///
/// Every backend fills the three headline scalars (`latency_seconds`,
/// `energy_mj`, `cycles`); the optional fields carry whatever extra fidelity
/// the substrate has — per-layer [`RunMetrics`] for cycle-level simulators, a
/// measured host wall-clock and a real classifier prediction for the native
/// CPU path.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutput {
    /// Name of the engine that executed the batch.
    pub engine: &'static str,
    /// End-to-end batch latency in seconds (simulated, analytic, or — for
    /// wall-clock engines — measured).
    pub latency_seconds: f64,
    /// Batch energy in millijoules.
    pub energy_mj: f64,
    /// Busy cycles attributed to the batch on the engine's clock.
    pub cycles: u64,
    /// Per-layer metrics, when the substrate produces them.
    pub metrics: Option<Arc<RunMetrics>>,
    /// Measured host wall-clock seconds, when the engine really executed.
    pub wall_seconds: Option<f64>,
    /// Class prediction of the functional forward pass, when one ran. Like
    /// every field here it describes the *batch* (the folded configuration
    /// and combined seed), not any individual rider.
    pub prediction: Option<usize>,
}

impl EngineOutput {
    /// Builds an output from full per-layer metrics (the simulator path):
    /// the headline scalars are derived from the metrics so the two can
    /// never disagree.
    pub fn from_metrics(engine: &'static str, metrics: Arc<RunMetrics>) -> Self {
        Self {
            engine,
            latency_seconds: metrics.total_latency_seconds(),
            energy_mj: metrics.total_energy_mj(),
            cycles: metrics.total_cycles(),
            metrics: Some(metrics),
            wall_seconds: None,
            prediction: None,
        }
    }
}

/// One progress event of a streaming execution.
///
/// The native engine emits one event per executed timestep; the simulator,
/// which has no timestep loop of its own, emits one per simulated layer.
#[derive(Debug, Clone, PartialEq)]
pub struct StepEvent {
    /// 0-based index of the completed step, counting from the start of the
    /// session (a resumed execution continues the count).
    pub index: usize,
    /// Total step count this request will reach (absolute, like `index`).
    pub total: usize,
    /// What one step is on this engine: `"timestep"` (native) or `"layer"`
    /// (simulator).
    pub unit: &'static str,
    /// Spikes the step produced in the final encoder output (0 when the
    /// substrate does not execute spikes).
    pub spikes: usize,
}

/// Receives [`StepEvent`]s during a streaming execution.
///
/// Engines call [`StepSink::on_step`] from the executing worker thread;
/// implementations must not block (the runtime forwards into a bounded
/// channel with a non-blocking send and counts drops).
pub trait StepSink {
    /// Called after each completed step.
    fn on_step(&mut self, event: &StepEvent);
}

/// A sink that discards every event (blocking callers of the streaming
/// path that only want the state/output).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullStepSink;

impl StepSink for NullStepSink {
    fn on_step(&mut self, _event: &StepEvent) {}
}

/// What a streaming execution produced: the ordinary batch output plus the
/// exported session state and (when the substrate computes them) the
/// running per-class logits.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedOutput {
    /// The ordinary batch output, as [`InferenceEngine::execute`] would
    /// report it.
    pub output: EngineOutput,
    /// Exported state to park in a session slot and resume from.
    pub state: SessionState,
    /// Per-class logits over every timestep executed so far, when the
    /// substrate runs the functional model.
    pub logits: Option<Vec<f32>>,
}

/// One pluggable execution backend for batched spiking-transformer
/// inference.
///
/// # Backend contract
///
/// * [`descriptor`](Self::descriptor) must be constant for the lifetime of
///   the engine, and [`execute`](Self::execute) must fail with exactly the
///   typed [`EngineError`] that [`EngineDescriptor::check`] predicts for an
///   unsupported batch — callers may pre-flight with `check` and treat a
///   later mismatch as a bug.
/// * `execute` is called concurrently from many worker threads; engines must
///   be internally synchronized (`Send + Sync`) and must not assume batches
///   arrive in formation order.
/// * Engines declaring `deterministic: true` must return bit-identical
///   [`EngineOutput`]s (ignoring `wall_seconds`) for equal [`EngineBatch`]es
///   — the serving runtime's reproducible-report guarantee rests on it.
/// * `latency_seconds`, `energy_mj` and `cycles` must be finite and
///   non-negative; `batch_size ≥ 1` holds for every batch the runtime forms.
pub trait InferenceEngine: Send + Sync + fmt::Debug {
    /// The engine's capability metadata.
    fn descriptor(&self) -> EngineDescriptor;

    /// Executes one batch on this substrate.
    fn execute(&self, batch: &EngineBatch) -> Result<EngineOutput, EngineError>;

    /// Executes `steps` further timesteps of a stateful, streaming
    /// inference, emitting progress into `sink` and returning the exported
    /// session state alongside the ordinary output.
    ///
    /// Unlike [`execute`](Self::execute), `batch.config` here is the *base*
    /// (unpadded, unrenamed) model configuration — weight identity across a
    /// split sequence depends on it — and the work size is carried by
    /// `steps`: the execution covers absolute timesteps
    /// `resume.timesteps_done() .. resume.timesteps_done() + steps`.
    /// `resume = None` starts from timestep zero with fresh membranes.
    ///
    /// Splitting a sequence across calls must be bit-identical to one call
    /// covering the same range (deterministic engines only). The default
    /// implementation refuses with the typed
    /// [`EngineError::StreamingUnsupported`]; baseline analytic engines
    /// keep it.
    fn execute_streaming(
        &self,
        batch: &EngineBatch,
        steps: usize,
        resume: Option<&SessionState>,
        sink: &mut dyn StepSink,
    ) -> Result<StreamedOutput, EngineError> {
        let _ = (batch, steps, resume, sink);
        Err(EngineError::StreamingUnsupported {
            engine: self.descriptor().name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_model::DatasetKind;

    fn batch(options: SimOptions, timesteps: usize) -> EngineBatch {
        EngineBatch {
            config: ModelConfig::new("b", DatasetKind::Cifar10, 1, timesteps, 8, 16, 2),
            regime: TrainingRegime::Bsa,
            seed: 1,
            options,
            batch_size: 1,
            batch_id: 0,
        }
    }

    fn descriptor() -> EngineDescriptor {
        EngineDescriptor {
            name: "test",
            substrate: EngineSubstrate::HostCpu,
            supports_ecp: false,
            deterministic: true,
            measures_wall_clock: false,
            max_folded_timesteps: Some(16),
            supports_streaming: false,
            seed_drain_ops_per_second: 1e9,
            simd_tier: None,
            description: "test engine",
        }
    }

    #[test]
    fn check_flags_unsupported_ecp_and_oversized_folds() {
        let d = descriptor();
        assert!(d.check(&batch(SimOptions::baseline(), 4)).is_ok());
        assert_eq!(
            d.check(&batch(SimOptions::with_ecp(6), 4)),
            Err(EngineError::EcpUnsupported { engine: "test" })
        );
        assert_eq!(
            d.check(&batch(SimOptions::baseline(), 32)),
            Err(EngineError::BatchTooLarge {
                engine: "test",
                folded_timesteps: 32,
                limit: 16
            })
        );
        assert!(!d.supports_options(&SimOptions::with_ecp(3)));
        assert!(d.supports_options(&SimOptions::baseline()));
        // supports_model folds in the timestep cap against the base config.
        let small = ModelConfig::new("s", DatasetKind::Cifar10, 1, 8, 8, 16, 2);
        let long = ModelConfig::new("l", DatasetKind::Cifar10, 1, 32, 8, 16, 2);
        assert!(d.supports_model(&small, &SimOptions::baseline()));
        assert!(!d.supports_model(&long, &SimOptions::baseline()));
        assert!(!d.supports_model(&small, &SimOptions::with_ecp(3)));
    }

    #[test]
    fn engine_names_compare_by_content() {
        assert_eq!(EngineName::new("simulator"), EngineName::simulator());
        assert_eq!(EngineName::default(), EngineName::simulator());
        assert_ne!(EngineName::native(), EngineName::simulator());
        assert_eq!(EngineName::from("gpu").as_str(), "gpu");
        assert_eq!(format!("{}", EngineName::native()), "native");
        assert!(EngineName::auto().is_auto());
        assert!(!EngineName::simulator().is_auto());
        assert_eq!(EngineName::auto().as_str(), "auto");
    }
}
