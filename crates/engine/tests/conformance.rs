//! Engine-conformance suite: one shared set of backend-contract checks,
//! executed against **every** engine the default registry registers
//! (`simulator`, `native`, `ptb`, `gpu`). A new backend added to the
//! registry is automatically held to the same contract.
//!
//! The contract under test is the one `InferenceEngine`'s rustdoc states:
//! descriptor/`check` agreement with `execute`, finite non-negative
//! headline scalars, determinism for engines declaring it, thread safety,
//! and typed (never stringly, never panicking) refusals.

use std::collections::HashSet;
use std::sync::Arc;

use bishop_bundle::TrainingRegime;
use bishop_core::{BishopConfig, SimOptions};
use bishop_engine::{
    CalibrationCache, EngineBatch, EngineError, EngineRegistry, InferenceEngine, ResultCache,
};
use bishop_model::{DatasetKind, ModelConfig};

fn registry() -> EngineRegistry {
    EngineRegistry::serving_default(
        &BishopConfig::default(),
        Arc::new(CalibrationCache::new()),
        Arc::new(ResultCache::new()),
    )
}

fn batch(seed: u64, options: SimOptions) -> EngineBatch {
    EngineBatch {
        config: ModelConfig::new("conformance", DatasetKind::Cifar10, 1, 8, 16, 32, 2),
        regime: TrainingRegime::Bsa,
        seed,
        options,
        batch_size: 2,
        batch_id: 0,
    }
}

/// Runs `check` once per registered engine, labelling failures by name —
/// and once more per engine behind an empty-plan
/// [`FaultInjectingEngine`](bishop_faults::FaultInjectingEngine) wrapper:
/// with no faults scheduled the wrapper must be conformance-transparent,
/// so the chaos harness can never weaken the backend contract it wraps.
fn for_each_engine(check: impl Fn(&str, &Arc<dyn InferenceEngine>)) {
    let registry = registry();
    assert!(
        registry.engines().len() >= 3,
        "the default registry must ship at least the three tentpole backends"
    );
    for engine in registry.engines() {
        check(engine.descriptor().name, engine);
        let wrapped: Arc<dyn InferenceEngine> = Arc::new(bishop_faults::FaultInjectingEngine::new(
            Arc::clone(engine),
            bishop_faults::FaultPlan::new(),
        ));
        check(engine.descriptor().name, &wrapped);
    }
}

#[test]
fn descriptors_are_unique_and_self_consistent() {
    let registry = registry();
    let mut names = HashSet::new();
    for engine in registry.engines() {
        let d = engine.descriptor();
        assert!(names.insert(d.name), "duplicate engine name {}", d.name);
        assert!(!d.description.is_empty());
        // The drain-rate seed feeds the runtime's per-engine calibration:
        // it must be a usable a-priori rate, not a degenerate value.
        assert!(
            d.seed_drain_ops_per_second.is_finite() && d.seed_drain_ops_per_second >= 1.0,
            "{}: seed_drain_ops_per_second {} must be finite and ≥ 1",
            d.name,
            d.seed_drain_ops_per_second
        );
        // No backend may squat on the autoselection pseudo-engine name.
        assert_ne!(
            d.name,
            bishop_engine::AUTO_ENGINE,
            "\"auto\" is reserved for the runtime dispatcher"
        );
        // The descriptor is constant across calls.
        assert_eq!(engine.descriptor(), d);
        // The registry resolves the name back to this engine.
        assert!(registry.get(d.name).is_some());
    }
}

#[test]
fn baseline_options_execute_everywhere_with_finite_outputs() {
    for_each_engine(|name, engine| {
        let output = engine
            .execute(&batch(11, SimOptions::baseline()))
            .unwrap_or_else(|e| panic!("{name}: baseline batch must execute, got {e}"));
        assert_eq!(output.engine, name, "{name}: output names its engine");
        assert!(
            output.latency_seconds.is_finite() && output.latency_seconds > 0.0,
            "{name}: latency {}",
            output.latency_seconds
        );
        assert!(
            output.energy_mj.is_finite() && output.energy_mj > 0.0,
            "{name}: energy {}",
            output.energy_mj
        );
        assert!(output.cycles > 0, "{name}: cycles");
        if engine.descriptor().measures_wall_clock {
            assert!(output.wall_seconds.is_some(), "{name}: wall clock promised");
        }
    });
}

#[test]
fn execute_agrees_with_descriptor_check() {
    // For every engine and every probe batch: `check` Ok ⇒ `execute` Ok,
    // and `check` Err(e) ⇒ `execute` fails with exactly `e`.
    let probes = [
        batch(1, SimOptions::baseline()),
        batch(1, SimOptions::with_ecp(6)),
        EngineBatch {
            config: ModelConfig::new("fold-heavy", DatasetKind::Cifar10, 1, 2048, 8, 16, 2),
            regime: TrainingRegime::Bsa,
            seed: 1,
            options: SimOptions::baseline(),
            batch_size: 256,
            batch_id: 0,
        },
    ];
    for_each_engine(|name, engine| {
        for probe in &probes {
            match engine.descriptor().check(probe) {
                Ok(()) => {
                    assert!(
                        engine.execute(probe).is_ok(),
                        "{name}: check passed but execute refused"
                    );
                }
                Err(expected) => {
                    let got = engine
                        .execute(probe)
                        .expect_err("check predicted a refusal");
                    assert_eq!(got, expected, "{name}: refusal mismatch");
                }
            }
        }
    });
}

#[test]
fn deterministic_engines_reproduce_headline_scalars() {
    for_each_engine(|name, engine| {
        if !engine.descriptor().deterministic {
            return;
        }
        let a = engine.execute(&batch(23, SimOptions::baseline())).unwrap();
        let b = engine.execute(&batch(23, SimOptions::baseline())).unwrap();
        assert_eq!(a.latency_seconds, b.latency_seconds, "{name}");
        assert_eq!(a.energy_mj, b.energy_mj, "{name}");
        assert_eq!(a.cycles, b.cycles, "{name}");
        // A different seed must not be trivially identical for engines that
        // consume the trace (the GPU roofline is config-only and exempt).
        if engine.descriptor().name != "gpu" {
            let c = engine.execute(&batch(24, SimOptions::baseline())).unwrap();
            assert_ne!(a.cycles, c.cycles, "{name}: seed-insensitive output");
        }
    });
}

#[test]
fn refusals_are_typed_with_stable_codes() {
    for_each_engine(|name, engine| {
        let d = engine.descriptor();
        if d.supports_ecp {
            return;
        }
        let error = engine
            .execute(&batch(1, SimOptions::with_ecp(6)))
            .expect_err("ECP-incapable engine must refuse");
        assert_eq!(
            error,
            EngineError::EcpUnsupported { engine: d.name },
            "{name}"
        );
        assert_eq!(error.code(), "ecp_unsupported", "{name}");
        assert_eq!(error.engine(), d.name, "{name}");
    });
}

#[test]
fn concurrent_execution_is_safe_and_consistent() {
    for_each_engine(|name, engine| {
        let outputs: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let engine = Arc::clone(engine);
                    scope.spawn(move || engine.execute(&batch(31, SimOptions::baseline())))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread").expect("executes"))
                .collect()
        });
        if engine.descriptor().deterministic {
            for pair in outputs.windows(2) {
                assert_eq!(pair[0], pair[1], "{name}: racy output");
            }
        }
    });
}
