//! Streaming/stateful execution contract, engine by engine.
//!
//! The acceptance property of the session subsystem lives here at the
//! engine layer: splitting a T-timestep sequence into session-continued
//! calls is **bit-identical** to one call covering the whole range, on both
//! engines that implement streaming (native and simulator). Baselines must
//! refuse with the typed `streaming_unsupported`.

use std::sync::Arc;

use bishop_bundle::TrainingRegime;
use bishop_core::BishopSimulator;
use bishop_core::{BishopConfig, SimOptions};
use bishop_engine::{
    CalibrationCache, EngineBatch, EngineError, EngineRegistry, InferenceEngine, NativeEngine,
    ResultCache, SessionState, SimulatorEngine, StepEvent, StepSink, StreamedOutput,
};
use bishop_model::{DatasetKind, ModelConfig};

/// Collects every event for assertions.
#[derive(Default)]
struct Recorder {
    events: Vec<StepEvent>,
}

impl StepSink for Recorder {
    fn on_step(&mut self, event: &StepEvent) {
        self.events.push(event.clone());
    }
}

fn base_batch(timesteps: usize, seed: u64) -> EngineBatch {
    EngineBatch {
        config: ModelConfig::new("streaming", DatasetKind::Cifar10, 2, timesteps, 8, 16, 2),
        regime: TrainingRegime::Bsa,
        seed,
        options: SimOptions::baseline(),
        batch_size: 1,
        batch_id: 0,
    }
}

fn stream(
    engine: &dyn InferenceEngine,
    batch: &EngineBatch,
    steps: usize,
    resume: Option<&SessionState>,
) -> (StreamedOutput, Vec<StepEvent>) {
    let mut recorder = Recorder::default();
    let streamed = engine
        .execute_streaming(batch, steps, resume, &mut recorder)
        .expect("streaming-capable engine");
    (streamed, recorder.events)
}

#[test]
fn native_split_session_is_bit_identical_to_single_request() {
    let engine = NativeEngine::new();
    let batch = base_batch(6, 42);

    let (single, single_events) = stream(&engine, &batch, 6, None);
    assert_eq!(single_events.len(), 6);

    for split in 1..6 {
        let (first, first_events) = stream(&engine, &batch, split, None);
        assert_eq!(first_events.len(), split);
        let (second, second_events) = stream(&engine, &batch, 6 - split, Some(&first.state));
        assert_eq!(second_events.len(), 6 - split);

        assert_eq!(
            second.logits, single.logits,
            "split at {split}: logits diverged from the single-request path"
        );
        assert_eq!(second.output.prediction, single.output.prediction);
        assert_eq!(second.state, single.state, "membrane state diverged");
        // Event indices continue the absolute timestep count across the split.
        assert_eq!(second_events[0].index, split);
        assert_eq!(second_events.last().unwrap().index, 5);
        assert!(second_events.iter().all(|e| e.total == 6));
        assert!(second_events.iter().all(|e| e.unit == "timestep"));
    }
}

#[test]
fn native_streaming_prediction_matches_blocking_execute() {
    let engine = NativeEngine::new();
    let batch = base_batch(4, 7);
    let blocking = engine.execute(&batch).expect("native executes");
    let (streamed, events) = stream(&engine, &batch, 4, None);
    assert_eq!(streamed.output.prediction, blocking.prediction);
    assert_eq!(events.len(), 4);
    let logits = streamed.logits.expect("native reports running logits");
    assert_eq!(logits.len(), DatasetKind::Cifar10.classes());
    match streamed.state {
        SessionState::Native(state) => assert_eq!(state.timesteps_done(), 4),
        other => panic!("native must export native state, got {other:?}"),
    }
}

#[test]
fn simulator_split_session_is_bit_identical_to_single_request() {
    let engine = SimulatorEngine::new(BishopSimulator::new(BishopConfig::default()));
    let batch = base_batch(8, 9);

    let (single, _) = stream(&engine, &batch, 8, None);
    let (first, _) = stream(&engine, &batch, 3, None);
    assert_eq!(first.state, SessionState::Simulated { timesteps_done: 3 });
    let (second, events) = stream(&engine, &batch, 5, Some(&first.state));

    assert_eq!(second.output, single.output, "simulated metrics diverged");
    assert_eq!(second.state, SessionState::Simulated { timesteps_done: 8 });
    assert!(!events.is_empty(), "simulator reports per-layer progress");
    assert!(events.iter().all(|e| e.unit == "layer"));
    let total = events.len();
    assert!(events.iter().all(|e| e.total == total));
}

#[test]
fn simulator_streaming_matches_blocking_execute_of_accumulated_config() {
    let engine = SimulatorEngine::new(BishopSimulator::new(BishopConfig::default()));
    let batch = base_batch(4, 11);
    let (streamed, _) = stream(&engine, &batch, 4, None);
    let blocking = engine.execute(&batch).expect("simulator executes");
    assert_eq!(
        streamed.output, blocking,
        "same config, same memoized result"
    );
}

#[test]
fn cross_substrate_resume_is_refused_typed() {
    let native = NativeEngine::new();
    let simulator = SimulatorEngine::new(BishopSimulator::new(BishopConfig::default()));
    let batch = base_batch(4, 3);

    let (from_sim, _) = stream(&simulator, &batch, 2, None);
    let mut sink = Recorder::default();
    let err = native
        .execute_streaming(&batch, 2, Some(&from_sim.state), &mut sink)
        .expect_err("native cannot resume simulated state");
    assert_eq!(err.code(), "streaming_unsupported");

    let (from_native, _) = stream(&native, &batch, 2, None);
    let err = simulator
        .execute_streaming(&batch, 2, Some(&from_native.state), &mut sink)
        .expect_err("simulator cannot resume native membranes");
    assert_eq!(err.code(), "streaming_unsupported");
}

#[test]
fn baseline_engines_refuse_streaming_typed() {
    let registry = EngineRegistry::serving_default(
        &BishopConfig::default(),
        Arc::new(CalibrationCache::new()),
        Arc::new(ResultCache::new()),
    );
    let batch = base_batch(4, 5);
    for name in ["ptb", "gpu"] {
        let engine = registry.get(name).expect("registered baseline");
        let mut sink = Recorder::default();
        let err = engine
            .execute_streaming(&batch, 4, None, &mut sink)
            .expect_err("baselines have no streaming path");
        assert_eq!(
            err,
            EngineError::StreamingUnsupported { engine: name },
            "baseline {name}"
        );
        assert!(!err.retryable());
        assert!(sink.events.is_empty());
    }
}

#[test]
fn fault_wrapper_delegates_streaming_transparently() {
    let inner: Arc<dyn InferenceEngine> = Arc::new(NativeEngine::new());
    let wrapped = bishop_faults::FaultInjectingEngine::new(
        Arc::clone(&inner),
        bishop_faults::FaultPlan::new(),
    );
    let batch = base_batch(4, 21);
    let (direct, direct_events) = stream(inner.as_ref(), &batch, 4, None);
    let (via_wrapper, wrapper_events) = stream(&wrapped, &batch, 4, None);
    assert_eq!(via_wrapper.logits, direct.logits);
    assert_eq!(via_wrapper.state, direct.state);
    assert_eq!(wrapper_events, direct_events);
}
