//! # bishop-faults
//!
//! Deterministic fault injection for Bishop inference engines.
//!
//! The serving stack's fault-tolerance machinery (worker panic containment,
//! retry-with-backoff, per-engine circuit breakers, health-aware degradation
//! routing) is only trustworthy if it can be *driven* — reproducibly — by
//! the exact failure shapes it claims to survive. This crate provides that
//! driver: [`FaultInjectingEngine`] wraps any
//! [`InferenceEngine`] and injects planned faults — typed transient errors,
//! added latency, one-shot panics and flapping error bursts — according to a
//! [`FaultPlan`] keyed on the *batch-execution index* (the 0-based count of
//! `execute` calls the wrapper has seen). No wall clock, no randomness at
//! execution time: a plan plus a traffic trace fully determines which
//! batches fault, so chaos tests replay bit-identically.
//!
//! With an empty plan the wrapper is transparent: it delegates
//! `descriptor()` and `execute()` verbatim, which the engine conformance
//! suite exploits to hold the wrapped simulator to the full backend
//! contract.
//!
//! ```
//! use bishop_faults::{FaultInjectingEngine, FaultPlan};
//! # use std::sync::Arc;
//! # use bishop_engine::{InferenceEngine, SimulatorEngine};
//! # use bishop_core::{BishopConfig, BishopSimulator};
//! # let inner: Arc<dyn InferenceEngine> =
//! #     Arc::new(SimulatorEngine::new(BishopSimulator::new(BishopConfig::default())));
//! // Fail the 1st and 2nd batches, panic on the 5th, then run clean.
//! let plan = FaultPlan::new().fail_range(0, 2).panic_at(4);
//! let engine = FaultInjectingEngine::new(inner, plan);
//! assert_eq!(engine.descriptor().name, "simulator");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use bishop_engine::{
    EngineBatch, EngineDescriptor, EngineError, EngineOutput, InferenceEngine, SessionState,
    StepSink, StreamedOutput,
};

/// Marker embedded in every panic payload [`FaultInjectingEngine`] raises.
///
/// Chaos suites install a panic hook that swallows payloads containing this
/// marker (an *injected* panic crossing `catch_unwind` is the expected
/// outcome under test, not noise worth printing) while leaving genuine test
/// panics loud.
pub const INJECTED_PANIC_MARKER: &str = "bishop-faults: planned panic";

/// One planned fault, applied to a single batch-execution index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Fail the attempt with [`EngineError::Transient`] without invoking
    /// the inner engine.
    Error,
    /// Sleep for the given duration, then delegate to the inner engine.
    /// The batch succeeds — slowly.
    Latency(Duration),
    /// Panic with a payload containing [`INJECTED_PANIC_MARKER`] without
    /// invoking the inner engine. The runtime's worker containment turns
    /// this into [`EngineError::Panicked`] for every batch-mate.
    Panic,
}

/// A deterministic per-batch-index fault schedule.
///
/// Indices count `execute` calls on the wrapping engine, starting at 0 and
/// *including* retried attempts — a retry consumes the next index, which is
/// what lets a plan express "fail twice, then recover" burst shapes that
/// exercise the runtime's retry loop end to end.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// An empty plan: the wrapper stays fully transparent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an arbitrary fault at `index` (replacing any fault already
    /// planned there).
    pub fn with_fault(mut self, index: u64, fault: Fault) -> Self {
        self.faults.insert(index, fault);
        self
    }

    /// Schedules a transient error at `index`.
    pub fn fail_at(self, index: u64) -> Self {
        self.with_fault(index, Fault::Error)
    }

    /// Schedules transient errors on `count` consecutive indices starting
    /// at `start`.
    pub fn fail_range(mut self, start: u64, count: u64) -> Self {
        for index in start..start.saturating_add(count) {
            self.faults.insert(index, Fault::Error);
        }
        self
    }

    /// Schedules a panic at `index`.
    pub fn panic_at(self, index: u64) -> Self {
        self.with_fault(index, Fault::Panic)
    }

    /// Schedules added latency at `index`.
    pub fn delay_at(self, index: u64, delay: Duration) -> Self {
        self.with_fault(index, Fault::Latency(delay))
    }

    /// Schedules a flapping error pattern: `cycles` repetitions of `burst`
    /// consecutive errors followed by `gap` clean indices, starting at
    /// `start`. This is the breaker-exercising shape: each burst drives the
    /// error rate over threshold, each gap lets half-open probes succeed.
    pub fn flapping(mut self, start: u64, burst: u64, gap: u64, cycles: u64) -> Self {
        let period = burst.saturating_add(gap).max(1);
        for cycle in 0..cycles {
            let base = start.saturating_add(cycle.saturating_mul(period));
            for offset in 0..burst {
                self.faults
                    .insert(base.saturating_add(offset), Fault::Error);
            }
        }
        self
    }

    /// Scatters `count` transient errors pseudo-randomly over
    /// `[0, range)`, derived purely from `seed` (splitmix64) — seeded
    /// chaos without wall-clock nondeterminism: the same seed always yields
    /// the same plan.
    pub fn scattered(mut self, seed: u64, count: u64, range: u64) -> Self {
        if range == 0 {
            return self;
        }
        let mut state = seed;
        let mut placed = 0;
        // Cap the walk so a count near `range` cannot loop unboundedly on
        // collisions; the bound is generous enough for test-sized plans.
        for _ in 0..count.saturating_mul(16).saturating_add(64) {
            if placed >= count.min(range) {
                break;
            }
            state = splitmix64(&mut state);
            let index = state % range;
            if let std::collections::btree_map::Entry::Vacant(slot) = self.faults.entry(index) {
                slot.insert(Fault::Error);
                placed += 1;
            }
        }
        self
    }

    /// The fault planned for `index`, if any.
    pub fn fault_at(&self, index: u64) -> Option<&Fault> {
        self.faults.get(&index)
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An [`InferenceEngine`] wrapper that injects the faults a [`FaultPlan`]
/// schedules and otherwise delegates to the wrapped backend.
///
/// The wrapper reports the inner engine's descriptor verbatim (it *is* that
/// engine, just unreliable), keeps a call counter to index the plan, and —
/// beyond the static plan — exposes [`set_forced`](Self::set_forced), a
/// runtime toggle that fails every attempt while set. The toggle exists for
/// wall-clock experiments (e.g. "inject a 2 s outage mid-bench") where a
/// per-index schedule cannot know how many batches fall inside the window;
/// deterministic tests should prefer the plan.
#[derive(Debug)]
pub struct FaultInjectingEngine {
    inner: std::sync::Arc<dyn InferenceEngine>,
    plan: FaultPlan,
    calls: AtomicU64,
    forced: AtomicBool,
    injected: AtomicU64,
}

impl FaultInjectingEngine {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: std::sync::Arc<dyn InferenceEngine>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            calls: AtomicU64::new(0),
            forced: AtomicBool::new(false),
            injected: AtomicU64::new(0),
        }
    }

    /// Turns unconditional transient failure on or off, overriding the
    /// plan while set.
    pub fn set_forced(&self, failing: bool) {
        self.forced.store(failing, Ordering::SeqCst);
    }

    /// How many `execute` calls the wrapper has seen.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }

    /// How many faults (errors, panics, delays) have been injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    fn engine_name(&self) -> &'static str {
        self.inner.descriptor().name
    }
}

impl InferenceEngine for FaultInjectingEngine {
    fn descriptor(&self) -> EngineDescriptor {
        self.inner.descriptor()
    }

    fn execute(&self, batch: &EngineBatch) -> Result<EngineOutput, EngineError> {
        let index = self.calls.fetch_add(1, Ordering::SeqCst);
        if self.forced.load(Ordering::SeqCst) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(EngineError::Transient {
                engine: self.engine_name(),
            });
        }
        match self.plan.fault_at(index) {
            Some(Fault::Error) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                Err(EngineError::Transient {
                    engine: self.engine_name(),
                })
            }
            Some(Fault::Panic) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                panic!("{INJECTED_PANIC_MARKER} at batch index {index}");
            }
            Some(Fault::Latency(delay)) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(*delay);
                self.inner.execute(batch)
            }
            None => self.inner.execute(batch),
        }
    }

    fn execute_streaming(
        &self,
        batch: &EngineBatch,
        steps: usize,
        resume: Option<&SessionState>,
        sink: &mut dyn StepSink,
    ) -> Result<StreamedOutput, EngineError> {
        // Streaming executions share the batch-execution index space and
        // fault shapes of `execute`: the plan neither knows nor cares how a
        // batch runs.
        let index = self.calls.fetch_add(1, Ordering::SeqCst);
        if self.forced.load(Ordering::SeqCst) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(EngineError::Transient {
                engine: self.engine_name(),
            });
        }
        match self.plan.fault_at(index) {
            Some(Fault::Error) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                Err(EngineError::Transient {
                    engine: self.engine_name(),
                })
            }
            Some(Fault::Panic) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                panic!("{INJECTED_PANIC_MARKER} at batch index {index}");
            }
            Some(Fault::Latency(delay)) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(*delay);
                self.inner.execute_streaming(batch, steps, resume, sink)
            }
            None => self.inner.execute_streaming(batch, steps, resume, sink),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use bishop_bundle::TrainingRegime;
    use bishop_core::{BishopConfig, BishopSimulator, SimOptions};
    use bishop_engine::SimulatorEngine;
    use bishop_model::{DatasetKind, ModelConfig};

    fn simulator() -> Arc<dyn InferenceEngine> {
        Arc::new(SimulatorEngine::new(BishopSimulator::new(
            BishopConfig::default(),
        )))
    }

    fn batch(seed: u64) -> EngineBatch {
        EngineBatch {
            config: ModelConfig::new("faults", DatasetKind::Cifar10, 1, 8, 16, 32, 2),
            regime: TrainingRegime::Bsa,
            seed,
            options: SimOptions::baseline(),
            batch_size: 1,
            batch_id: 0,
        }
    }

    #[test]
    fn empty_plan_is_transparent() {
        let inner = simulator();
        let direct = inner.execute(&batch(7)).unwrap();
        let wrapped = FaultInjectingEngine::new(Arc::clone(&inner), FaultPlan::new());
        assert_eq!(wrapped.descriptor(), inner.descriptor());
        let output = wrapped.execute(&batch(7)).unwrap();
        assert_eq!(output, direct);
        assert_eq!(wrapped.calls(), 1);
        assert_eq!(wrapped.injected(), 0);
    }

    #[test]
    fn planned_errors_fire_on_exact_indices() {
        let plan = FaultPlan::new().fail_at(0).fail_at(2);
        let wrapped = FaultInjectingEngine::new(simulator(), plan);
        assert_eq!(
            wrapped.execute(&batch(1)),
            Err(EngineError::Transient {
                engine: "simulator"
            })
        );
        assert!(wrapped.execute(&batch(1)).is_ok());
        assert!(wrapped.execute(&batch(1)).is_err());
        assert!(wrapped.execute(&batch(1)).is_ok());
        assert_eq!(wrapped.injected(), 2);
    }

    #[test]
    fn flapping_builds_burst_gap_cycles() {
        let plan = FaultPlan::new().flapping(1, 2, 3, 2);
        // Bursts at [1,2] and [6,7]; everything else clean.
        for index in 0..10 {
            let faulty = matches!(index, 1 | 2 | 6 | 7);
            assert_eq!(plan.fault_at(index).is_some(), faulty, "index {index}");
        }
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn scattered_is_seed_deterministic_and_bounded() {
        let a = FaultPlan::new().scattered(42, 5, 100);
        let b = FaultPlan::new().scattered(42, 5, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let c = FaultPlan::new().scattered(43, 5, 100);
        assert_ne!(a, c);
        // Degenerate ranges cannot loop or overshoot.
        assert!(FaultPlan::new().scattered(1, 5, 0).is_empty());
        assert_eq!(FaultPlan::new().scattered(1, 10, 3).len(), 3);
    }

    #[test]
    fn panic_payload_carries_the_marker() {
        let wrapped = FaultInjectingEngine::new(simulator(), FaultPlan::new().panic_at(0));
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| wrapped.execute(&batch(1))));
        let payload = result.expect_err("planned panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert!(message.contains(INJECTED_PANIC_MARKER));
        assert_eq!(wrapped.injected(), 1);
    }

    #[test]
    fn forced_failure_overrides_the_plan_until_cleared() {
        let wrapped = FaultInjectingEngine::new(simulator(), FaultPlan::new());
        wrapped.set_forced(true);
        assert!(wrapped.execute(&batch(1)).is_err());
        assert!(wrapped.execute(&batch(1)).is_err());
        wrapped.set_forced(false);
        assert!(wrapped.execute(&batch(1)).is_ok());
    }

    #[test]
    fn latency_faults_still_succeed() {
        let wrapped = FaultInjectingEngine::new(
            simulator(),
            FaultPlan::new().delay_at(0, Duration::from_millis(1)),
        );
        assert!(wrapped.execute(&batch(1)).is_ok());
        assert_eq!(wrapped.injected(), 1);
    }
}
