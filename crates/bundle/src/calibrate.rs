//! Per-dataset workload calibration.
//!
//! The paper's accelerator evaluation runs on activation traces of spiking
//! transformers trained on five datasets. This reproduction substitutes the
//! trained models with trace generators whose statistics (firing density,
//! per-feature spread, bundle clustering, BSA effect) are calibrated to the
//! values the paper reports:
//!
//! * §6.4: the ImageNet-100 model averages ≈ 20 % firing density across
//!   layers, and the stratifier routes ≈ 50 % of the workload to the dense
//!   core;
//! * Fig. 5/6 (Model 1, CIFAR-10): ≈ 29 % of bundles active without BSA;
//!   spike density 6.34 % → 2.75 % and TTB density 11.16 % → 5.22 % with BSA;
//!   the fraction of silent Q features grows from 9.3 % to 52.2 %;
//! * §6.3: after ECP with the paper's thresholds, Q/K token retention ranges
//!   from ≈ 72 %/52 % (CIFAR-10) down to ≈ 8 %/5.5 % (DVS-Gesture);
//! * §6.1: DVS models run at 20 timesteps with extremely sparse firing,
//!   speech models are in between.

use bishop_model::workload::SyntheticTraceSpec;
use bishop_model::{DatasetKind, ModelConfig};

use crate::bsa::BsaEffect;
use crate::ecp::EcpConfig;
use crate::ttb::BundleShape;

/// Whether a workload reflects baseline training or BSA training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrainingRegime {
    /// Standard (cross-entropy only) training.
    Baseline,
    /// Bundle-Sparsity-Aware training (cross-entropy + λ·L_bsp).
    Bsa,
}

/// Calibrated workload statistics and co-design hyper-parameters for one
/// dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetCalibration {
    /// The dataset this calibration describes.
    pub dataset: DatasetKind,
    /// Trace statistics of the baseline-trained model.
    pub baseline: SyntheticTraceSpec,
    /// Trace statistics of the BSA-trained model.
    pub bsa: SyntheticTraceSpec,
    /// The BSA loss weight λ used in the paper.
    pub bsa_lambda: f64,
    /// The ECP pruning threshold θp used in the paper.
    pub ecp_threshold: u32,
    /// The statistical BSA effect (bundle / spike keep fractions).
    pub bsa_effect: BsaEffect,
}

impl DatasetCalibration {
    /// Calibration table for each evaluation dataset.
    pub fn for_dataset(dataset: DatasetKind) -> Self {
        // Helper: a baseline spec plus a BSA spec derived by scaling the
        // densities and silencing more features.
        #[allow(clippy::too_many_arguments)]
        fn spec(
            input: f64,
            q: f64,
            k: f64,
            v: f64,
            hidden: f64,
            spread: f64,
            silent: f64,
            cluster_boost: f64,
        ) -> SyntheticTraceSpec {
            SyntheticTraceSpec {
                input_density: input,
                q_density: q,
                k_density: k,
                v_density: v,
                hidden_density: hidden,
                feature_spread: spread,
                silent_fraction: silent,
                cluster: (2, 4, cluster_boost),
            }
        }
        fn bsa_from(
            baseline: &SyntheticTraceSpec,
            density_scale: f64,
            silent: f64,
        ) -> SyntheticTraceSpec {
            SyntheticTraceSpec {
                input_density: baseline.input_density * density_scale,
                q_density: baseline.q_density * density_scale,
                k_density: baseline.k_density * density_scale,
                v_density: baseline.v_density * density_scale,
                hidden_density: baseline.hidden_density * density_scale,
                feature_spread: baseline.feature_spread + 0.5,
                silent_fraction: silent,
                cluster: (
                    baseline.cluster.0,
                    baseline.cluster.1,
                    baseline.cluster.2 * 1.5,
                ),
            }
        }

        match dataset {
            DatasetKind::Cifar10 => {
                let baseline = spec(0.12, 0.09, 0.07, 0.12, 0.10, 2.0, 0.09, 3.0);
                let bsa = bsa_from(&baseline, 0.43, 0.52);
                Self {
                    dataset,
                    baseline,
                    bsa,
                    bsa_lambda: 1.0,
                    ecp_threshold: 6,
                    bsa_effect: BsaEffect::new(0.47, 0.43),
                }
            }
            DatasetKind::Cifar100 => {
                let baseline = spec(0.14, 0.11, 0.09, 0.13, 0.11, 2.0, 0.05, 3.0);
                let bsa = bsa_from(&baseline, 0.50, 0.39);
                Self {
                    dataset,
                    baseline,
                    bsa,
                    bsa_lambda: 0.5,
                    ecp_threshold: 6,
                    bsa_effect: BsaEffect::new(0.55, 0.50),
                }
            }
            DatasetKind::ImageNet100 => {
                let baseline = spec(0.20, 0.12, 0.08, 0.18, 0.15, 1.5, 0.03, 2.5);
                let bsa = bsa_from(&baseline, 0.50, 0.30);
                Self {
                    dataset,
                    baseline,
                    bsa,
                    bsa_lambda: 0.3,
                    ecp_threshold: 6,
                    bsa_effect: BsaEffect::new(0.55, 0.50),
                }
            }
            DatasetKind::DvsGesture => {
                let baseline = spec(0.08, 0.05, 0.04, 0.08, 0.06, 2.5, 0.15, 4.0);
                let bsa = bsa_from(&baseline, 0.45, 0.45);
                Self {
                    dataset,
                    baseline,
                    bsa,
                    bsa_lambda: 1.0,
                    ecp_threshold: 10,
                    bsa_effect: BsaEffect::new(0.45, 0.42),
                }
            }
            DatasetKind::GoogleSpeechCommands => {
                let baseline = spec(0.15, 0.10, 0.08, 0.14, 0.12, 1.8, 0.06, 2.5);
                let bsa = bsa_from(&baseline, 0.55, 0.35);
                Self {
                    dataset,
                    baseline,
                    bsa,
                    bsa_lambda: 0.5,
                    ecp_threshold: 6,
                    bsa_effect: BsaEffect::new(0.55, 0.52),
                }
            }
        }
    }

    /// Calibration for a model configuration (keyed by its dataset).
    pub fn for_model(config: &ModelConfig) -> Self {
        Self::for_dataset(config.dataset)
    }

    /// The trace spec for the requested training regime.
    pub fn spec(&self, regime: TrainingRegime) -> &SyntheticTraceSpec {
        match regime {
            TrainingRegime::Baseline => &self.baseline,
            TrainingRegime::Bsa => &self.bsa,
        }
    }

    /// The paper's ECP configuration for this dataset under the given bundle
    /// shape.
    pub fn ecp_config(&self, bundle: BundleShape) -> EcpConfig {
        EcpConfig::uniform(self.ecp_threshold, bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_has_a_calibration() {
        for dataset in DatasetKind::all() {
            let cal = DatasetCalibration::for_dataset(dataset);
            assert_eq!(cal.dataset, dataset);
            assert!(cal.baseline.input_density > 0.0);
            assert!(cal.bsa.input_density < cal.baseline.input_density);
        }
    }

    #[test]
    fn ecp_thresholds_match_paper() {
        assert_eq!(
            DatasetCalibration::for_dataset(DatasetKind::DvsGesture).ecp_threshold,
            10
        );
        for dataset in [
            DatasetKind::Cifar10,
            DatasetKind::Cifar100,
            DatasetKind::ImageNet100,
            DatasetKind::GoogleSpeechCommands,
        ] {
            assert_eq!(DatasetCalibration::for_dataset(dataset).ecp_threshold, 6);
        }
    }

    #[test]
    fn bsa_lambdas_match_paper() {
        assert_eq!(
            DatasetCalibration::for_dataset(DatasetKind::Cifar10).bsa_lambda,
            1.0
        );
        assert_eq!(
            DatasetCalibration::for_dataset(DatasetKind::Cifar100).bsa_lambda,
            0.5
        );
        assert_eq!(
            DatasetCalibration::for_dataset(DatasetKind::ImageNet100).bsa_lambda,
            0.3
        );
        assert_eq!(
            DatasetCalibration::for_dataset(DatasetKind::DvsGesture).bsa_lambda,
            1.0
        );
    }

    #[test]
    fn imagenet_density_is_around_twenty_percent() {
        let cal = DatasetCalibration::for_dataset(DatasetKind::ImageNet100);
        assert!((cal.baseline.input_density - 0.20).abs() < 0.02);
    }

    #[test]
    fn dvs_is_the_sparsest_workload() {
        let dvs = DatasetCalibration::for_dataset(DatasetKind::DvsGesture);
        for other in [
            DatasetKind::Cifar10,
            DatasetKind::Cifar100,
            DatasetKind::ImageNet100,
            DatasetKind::GoogleSpeechCommands,
        ] {
            let cal = DatasetCalibration::for_dataset(other);
            assert!(dvs.baseline.q_density <= cal.baseline.q_density);
        }
    }

    #[test]
    fn spec_selector_returns_the_right_regime() {
        let cal = DatasetCalibration::for_dataset(DatasetKind::Cifar10);
        assert_eq!(cal.spec(TrainingRegime::Baseline), &cal.baseline);
        assert_eq!(cal.spec(TrainingRegime::Bsa), &cal.bsa);
    }

    #[test]
    fn for_model_uses_the_models_dataset() {
        let cal = DatasetCalibration::for_model(&ModelConfig::model3_imagenet100());
        assert_eq!(cal.dataset, DatasetKind::ImageNet100);
    }

    #[test]
    fn ecp_config_propagates_threshold_and_bundle() {
        let cal = DatasetCalibration::for_dataset(DatasetKind::DvsGesture);
        let config = cal.ecp_config(BundleShape::new(4, 2));
        assert_eq!(config.theta_q, 10);
        assert_eq!(config.bundle, BundleShape::new(4, 2));
    }
}
