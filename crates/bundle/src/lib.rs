//! # bishop-bundle
//!
//! Token-Time Bundles (TTBs) and the HW/SW co-design algorithms built on
//! them: bundle tagging, bundle-level sparsity statistics and the BSA
//! (Bundle-Sparsity-Aware) shaping of activation traces, the dense/sparse
//! workload stratifier (Alg. 1 of the paper), and Error-Constrained TTB
//! Pruning (ECP) of spiking queries and keys.
//!
//! A TTB packs the binary spiking activations of `BSn` tokens over `BSt`
//! timesteps for one feature column (Fig. 4 of the paper). It is the unit of
//! work dispatched to the Bishop cores: an *inactive* bundle (no spike
//! anywhere inside it) is skipped entirely, and the weight row of a feature
//! is fetched once and reused across all tokens/timesteps inside the active
//! bundles.
//!
//! ```
//! use bishop_bundle::{BundleShape, TtbTags};
//! use bishop_spiketensor::{SpikeTensor, TensorShape};
//!
//! let mut spikes = SpikeTensor::zeros(TensorShape::new(4, 8, 2));
//! spikes.set(0, 0, 0, true);
//! let tags = TtbTags::from_tensor(&spikes, BundleShape::new(2, 4));
//! // Only one of the (2 time-bundles × 2 token-bundles × 2 features)
//! // bundles contains a spike.
//! assert_eq!(tags.active_bundles(), 1);
//! assert_eq!(tags.total_bundles(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsa;
pub mod calibrate;
pub mod ecp;
pub mod sparsity;
pub mod stratify;
pub mod ttb;

pub use bsa::{bundle_sparsity_loss, bundle_sparsity_loss_reference, BsaEffect};
pub use calibrate::{DatasetCalibration, TrainingRegime};
pub use ecp::{EcpConfig, EcpResult};
pub use sparsity::BundleSparsityStats;
pub use stratify::{StratifiedWorkload, Stratifier};
pub use ttb::{BundleShape, TtbGrid, TtbTags};
