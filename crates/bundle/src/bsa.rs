//! Bundle-Sparsity-Aware (BSA) training support (§4.1 of the paper).
//!
//! BSA adds a bundle-level sparsity loss `L_bsp` — the sum of the `L0`
//! activity tags of every TTB across all layers — to the training objective,
//! weighted by a hyper-parameter `λ`. Training against this loss pushes the
//! model to (a) fire less overall and (b) concentrate the remaining firing
//! into fewer bundles and fewer feature columns, which is exactly the
//! structure the Bishop dataflow can skip.
//!
//! Two things live here:
//!
//! * [`bundle_sparsity_loss`] — the `L_bsp` term itself, used by the real
//!   (small-scale) training loop in `bishop-train`;
//! * [`BsaEffect`] — a trace transformation that reproduces the *statistical
//!   effect* of BSA training on a given activation trace (used to generate
//!   "with BSA" workloads for the accelerator evaluation without retraining
//!   the large models the paper uses — see the substitution table in
//!   `DESIGN.md`).

use bishop_spiketensor::SpikeTensor;
use rand::Rng;

use crate::ttb::{BundleShape, TtbTags};

/// Computes the bundle-level sparsity loss `L_bsp` (Eq. 10): the sum over all
/// provided activation tensors of the `L0` activity tags of their TTBs.
///
/// Because each tag is the spike count inside the bundle, this equals the
/// total spike count — but expressed per bundle it is the quantity whose
/// gradient (through the surrogate-gradient relaxation in `bishop-train`)
/// concentrates firing into fewer bundles.
///
/// Word-parallel: every spike lands in exactly one bundle, so the sum of all
/// tags is exactly the popcount of the packed words — one `count_ones` per
/// word instead of materialising the tag array. The bundle shape only
/// affects how the count is partitioned, never its total; the differential
/// property test `sparsity_loss_matches_reference` checks this equivalence
/// against [`bundle_sparsity_loss_reference`] on random shapes.
pub fn bundle_sparsity_loss(tensors: &[&SpikeTensor], _bundle: BundleShape) -> u64 {
    tensors.iter().map(|t| t.count_ones() as u64).sum()
}

/// Scalar reference implementation of [`bundle_sparsity_loss`]: materialises
/// every tensor's Token-Time-Bundle tags and sums them. Kept for
/// differential testing of the word-parallel shortcut.
pub fn bundle_sparsity_loss_reference(tensors: &[&SpikeTensor], bundle: BundleShape) -> u64 {
    tensors
        .iter()
        .map(|t| TtbTags::from_tensor_reference(t, bundle).tag_sum())
        .sum()
}

/// Statistical model of the effect of BSA training on an activation trace.
///
/// The transformation never *adds* spikes; it removes them in two stages:
///
/// 1. **Bundle concentration** — bundles are ranked by activity and the least
///    active bundles are cleared until only `ttb_keep_fraction` of the
///    originally active bundles remain. This mirrors Fig. 5/6: BSA removes
///    most weakly-active bundles and leaves a small number of strongly
///    active ones.
/// 2. **Spike thinning** — spikes in the surviving bundles are dropped
///    uniformly at random until roughly `spike_keep_fraction` of the original
///    spikes remain (never dropping a surviving bundle to zero, so stage 1's
///    bundle count is preserved).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BsaEffect {
    /// Fraction of originally active bundles that stay active.
    pub ttb_keep_fraction: f64,
    /// Fraction of original spikes that remain after both stages.
    pub spike_keep_fraction: f64,
}

impl BsaEffect {
    /// Creates a BSA effect model.
    ///
    /// # Panics
    ///
    /// Panics if either fraction is outside `[0, 1]` or the spike fraction
    /// exceeds the bundle fraction (you cannot keep more spikes than the
    /// bundles that contain them allow).
    pub fn new(ttb_keep_fraction: f64, spike_keep_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&ttb_keep_fraction) && (0.0..=1.0).contains(&spike_keep_fraction),
            "keep fractions must be in [0, 1]"
        );
        Self {
            ttb_keep_fraction,
            spike_keep_fraction,
        }
    }

    /// Applies the effect to a trace, returning the sparsified trace.
    pub fn apply<R: Rng>(
        &self,
        tensor: &SpikeTensor,
        bundle: BundleShape,
        rng: &mut R,
    ) -> SpikeTensor {
        let tags = TtbTags::from_tensor(tensor, bundle);
        let grid = tags.grid();
        let features = tensor.shape().features;

        // Stage 1: rank active bundles by activity and keep the strongest.
        let mut active: Vec<(u32, usize, usize, usize)> = Vec::new();
        for (bt, bn) in grid.iter_bundles() {
            for d in 0..features {
                let tag = tags.tag(bt, bn, d);
                if tag > 0 {
                    active.push((tag, bt, bn, d));
                }
            }
        }
        active.sort_unstable_by_key(|entry| std::cmp::Reverse(entry.0));
        let keep_count = (self.ttb_keep_fraction * active.len() as f64).round() as usize;
        let kept = &active[..keep_count.min(active.len())];

        // Per-bundle-row logical feature masks (D bits each): every feature
        // row inside bundle row (bt, bn) is ANDed against the same mask, so
        // the concentration stage runs word-wise over the packed rows.
        let row_words = features.div_ceil(64);
        let mut keep_masks = vec![0u64; grid.bundles_per_feature() * row_words];
        for &(_, bt, bn, d) in kept {
            let row = bt * grid.token_bundles() + bn;
            keep_masks[row * row_words + d / 64] |= 1 << (d % 64);
        }

        let shape = tensor.shape();
        let mut concentrated = SpikeTensor::zeros(shape);
        for t in 0..shape.timesteps {
            for n in 0..shape.tokens {
                let (bt, bn) = grid.bundle_of(t, n);
                let mask = &keep_masks[(bt * grid.token_bundles() + bn) * row_words..][..row_words];
                let row = tensor.row_words(t, n);
                concentrated.set_row_words(t, n, |i| row.word(i) & mask[i]);
            }
        }

        // Stage 2: thin spikes inside surviving bundles down to the target
        // overall spike count, keeping at least one spike per surviving
        // bundle.
        let target_spikes =
            (self.spike_keep_fraction * tensor.count_ones() as f64).round() as usize;
        let current = concentrated.count_ones();
        if current <= target_spikes {
            return concentrated;
        }
        let surviving_bundles = kept.len();
        let removable = current.saturating_sub(surviving_bundles);
        let to_remove = (current - target_spikes).min(removable);
        if to_remove == 0 {
            return concentrated;
        }
        let drop_probability = to_remove as f64 / removable.max(1) as f64;

        // Track per-bundle remaining counts so we never empty a bundle;
        // these are exactly the concentrated tensor's bundle tags, computed
        // row-wise with the set-bit iterator.
        let mut remaining = vec![0u32; grid.bundles_per_feature() * features];
        for t in 0..shape.timesteps {
            for n in 0..shape.tokens {
                let (bt, bn) = grid.bundle_of(t, n);
                let base = (bt * grid.token_bundles() + bn) * features;
                for d in concentrated.row_words(t, n).iter_set_bits() {
                    remaining[base + d] += 1;
                }
            }
        }
        let mut result = concentrated.clone();
        for t in 0..shape.timesteps {
            for n in 0..shape.tokens {
                let (bt, bn) = grid.bundle_of(t, n);
                let base = (bt * grid.token_bundles() + bn) * features;
                for d in concentrated.row_words(t, n).iter_set_bits() {
                    let idx = base + d;
                    if remaining[idx] > 1 && rng.gen_bool(drop_probability.clamp(0.0, 1.0)) {
                        result.set(t, n, d, false);
                        remaining[idx] -= 1;
                    }
                }
            }
        }
        result
    }
}

impl Default for BsaEffect {
    /// The effect measured on Model 1 in the paper (Fig. 6): TTB density
    /// 11.16 % → 5.22 % (≈ 0.47×) and spike density 6.34 % → 2.75 %
    /// (≈ 0.43×).
    fn default() -> Self {
        Self {
            ttb_keep_fraction: 0.47,
            spike_keep_fraction: 0.43,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsity::BundleSparsityStats;
    use bishop_spiketensor::{SpikeTraceGenerator, TensorShape, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace(density: f64, seed: u64) -> SpikeTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        SpikeTraceGenerator::new(TraceProfile::new(density).with_feature_spread(1.5))
            .generate(TensorShape::new(8, 32, 48), &mut rng)
    }

    #[test]
    fn loss_equals_total_spike_count() {
        let a = trace(0.1, 1);
        let b = trace(0.2, 2);
        let loss = bundle_sparsity_loss(&[&a, &b], BundleShape::default());
        assert_eq!(loss, (a.count_ones() + b.count_ones()) as u64);
    }

    #[test]
    fn loss_of_empty_trace_is_zero() {
        let empty = SpikeTensor::zeros(TensorShape::new(2, 2, 2));
        assert_eq!(bundle_sparsity_loss(&[&empty], BundleShape::default()), 0);
    }

    #[test]
    fn bsa_never_adds_spikes() {
        let original = trace(0.15, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let shaped = BsaEffect::default().apply(&original, BundleShape::default(), &mut rng);
        for (t, n, d) in shaped.iter_active() {
            assert!(
                original.get(t, n, d),
                "BSA created a spike at ({t},{n},{d})"
            );
        }
    }

    #[test]
    fn bsa_hits_the_requested_bundle_and_spike_reduction() {
        let original = trace(0.12, 5);
        let bundle = BundleShape::default();
        let mut rng = StdRng::seed_from_u64(6);
        let effect = BsaEffect::new(0.5, 0.45);
        let shaped = effect.apply(&original, bundle, &mut rng);

        let before = BundleSparsityStats::measure(&original, bundle);
        let after = BundleSparsityStats::measure(&shaped, bundle);
        let bundle_ratio = after.active_bundles as f64 / before.active_bundles as f64;
        let spike_ratio = shaped.count_ones() as f64 / original.count_ones() as f64;
        assert!(
            (bundle_ratio - 0.5).abs() < 0.05,
            "bundle ratio {bundle_ratio}"
        );
        assert!(
            (spike_ratio - 0.45).abs() < 0.12,
            "spike ratio {spike_ratio}"
        );
    }

    #[test]
    fn bsa_increases_silent_features() {
        let original = trace(0.05, 7);
        let bundle = BundleShape::default();
        let mut rng = StdRng::seed_from_u64(8);
        let shaped = BsaEffect::new(0.3, 0.3).apply(&original, bundle, &mut rng);
        let before = BundleSparsityStats::measure(&original, bundle);
        let after = BundleSparsityStats::measure(&shaped, bundle);
        assert!(after.silent_feature_fraction >= before.silent_feature_fraction);
    }

    #[test]
    fn keep_everything_is_identity() {
        let original = trace(0.1, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let shaped = BsaEffect::new(1.0, 1.0).apply(&original, BundleShape::default(), &mut rng);
        assert_eq!(shaped, original);
    }

    #[test]
    fn keep_nothing_clears_the_trace() {
        let original = trace(0.1, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let shaped = BsaEffect::new(0.0, 0.0).apply(&original, BundleShape::default(), &mut rng);
        assert_eq!(shaped.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "keep fractions")]
    fn invalid_fraction_rejected() {
        BsaEffect::new(1.5, 0.5);
    }
}
