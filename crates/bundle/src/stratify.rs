//! The dense/sparse workload stratifier (Algorithm 1 of the paper).
//!
//! Per input feature, the stratifier counts how many of that feature's TTBs
//! are active and compares the count against a stratification threshold
//! `θs`: features with more active bundles than the threshold are routed to
//! the TT-Bundle *dense* core, the rest to the TT-Bundle *sparse* core. The
//! recorded feature index lists are used to permute the weight-matrix rows so
//! each core receives the matching weights.

use bishop_spiketensor::SpikeTensor;

use crate::ttb::{BundleShape, TtbTags};

/// The dense/sparse partition produced by the stratifier for one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratifiedWorkload {
    /// Indices of features routed to the dense core (`R_D` in Alg. 1).
    pub dense_features: Vec<usize>,
    /// Indices of features routed to the sparse core (`R_S` in Alg. 1).
    pub sparse_features: Vec<usize>,
    /// Number of active bundles routed to the dense core.
    pub dense_active_bundles: usize,
    /// Number of active bundles routed to the sparse core.
    pub sparse_active_bundles: usize,
    /// Number of spikes routed to the dense core.
    pub dense_spikes: usize,
    /// Number of spikes routed to the sparse core.
    pub sparse_spikes: usize,
    /// The threshold that produced this partition.
    pub threshold: usize,
}

impl StratifiedWorkload {
    /// Total number of features.
    pub fn total_features(&self) -> usize {
        self.dense_features.len() + self.sparse_features.len()
    }

    /// Fraction of features routed to the dense core.
    pub fn dense_feature_fraction(&self) -> f64 {
        self.dense_features.len() as f64 / self.total_features() as f64
    }

    /// Fraction of *spikes* (actual work) routed to the dense core.
    pub fn dense_work_fraction(&self) -> f64 {
        let total = self.dense_spikes + self.sparse_spikes;
        if total == 0 {
            0.0
        } else {
            self.dense_spikes as f64 / total as f64
        }
    }

    /// Checks that the partition covers every feature exactly once.
    pub fn is_partition(&self, features: usize) -> bool {
        let mut seen = vec![false; features];
        for &d in self.dense_features.iter().chain(&self.sparse_features) {
            if d >= features || seen[d] {
                return false;
            }
            seen[d] = true;
        }
        seen.into_iter().all(|s| s)
    }
}

/// The workload stratifier.
///
/// ```
/// use bishop_bundle::{BundleShape, Stratifier};
/// use bishop_spiketensor::{SpikeTensor, TensorShape};
///
/// // Feature 0 fires everywhere (dense), feature 1 never (sparse).
/// let tensor = SpikeTensor::from_fn(TensorShape::new(4, 8, 2), |_, _, d| d == 0);
/// let split = Stratifier::new(2).stratify(&tensor, BundleShape::default());
/// assert_eq!(split.dense_features, vec![0]);
/// assert_eq!(split.sparse_features, vec![1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stratifier {
    threshold: usize,
}

impl Stratifier {
    /// Creates a stratifier with stratification threshold `θs` (a feature is
    /// dense when its active-bundle count is strictly greater than `θs`).
    pub fn new(threshold: usize) -> Self {
        Self { threshold }
    }

    /// The stratification threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Runs Algorithm 1 on `tensor`.
    pub fn stratify(&self, tensor: &SpikeTensor, bundle: BundleShape) -> StratifiedWorkload {
        let tags = TtbTags::from_tensor(tensor, bundle);
        self.stratify_tags(tensor, &tags)
    }

    /// Runs Algorithm 1 from pre-computed tags.
    pub fn stratify_tags(&self, tensor: &SpikeTensor, tags: &TtbTags) -> StratifiedWorkload {
        let features = tensor.shape().features;
        let active_per_feature = tags.active_per_feature();
        let spikes_per_feature = tensor.per_feature_counts();

        let mut dense_features = Vec::new();
        let mut sparse_features = Vec::new();
        let mut dense_active_bundles = 0;
        let mut sparse_active_bundles = 0;
        let mut dense_spikes = 0;
        let mut sparse_spikes = 0;

        for d in 0..features {
            if active_per_feature[d] > self.threshold {
                dense_features.push(d);
                dense_active_bundles += active_per_feature[d];
                dense_spikes += spikes_per_feature[d];
            } else {
                sparse_features.push(d);
                sparse_active_bundles += active_per_feature[d];
                sparse_spikes += spikes_per_feature[d];
            }
        }

        StratifiedWorkload {
            dense_features,
            sparse_features,
            dense_active_bundles,
            sparse_active_bundles,
            dense_spikes,
            sparse_spikes,
            threshold: self.threshold,
        }
    }

    /// Picks the smallest threshold whose stratification routes at most
    /// `target_dense_fraction` of the *features* to the dense core. This is
    /// how the design-space exploration of Fig. 15 produces different
    /// dense-to-sparse split ratios.
    pub fn threshold_for_dense_fraction(
        tensor: &SpikeTensor,
        bundle: BundleShape,
        target_dense_fraction: f64,
    ) -> usize {
        assert!(
            (0.0..=1.0).contains(&target_dense_fraction),
            "target fraction must be in [0, 1]"
        );
        let tags = TtbTags::from_tensor(tensor, bundle);
        let mut counts = tags.active_per_feature();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let dense_target = (target_dense_fraction * counts.len() as f64).round() as usize;
        if dense_target == 0 {
            return counts.first().copied().unwrap_or(0);
        }
        if dense_target >= counts.len() {
            return 0;
        }
        // Features with count > threshold are dense; choose the count at the
        // boundary so approximately `dense_target` features exceed it.
        counts[dense_target.saturating_sub(1)]
            .saturating_sub(1)
            .max(counts[dense_target])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_spiketensor::{SpikeTraceGenerator, TensorShape, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mixed_tensor() -> SpikeTensor {
        // Features 0..4 hot, 4..16 cold.
        SpikeTensor::from_fn(TensorShape::new(8, 16, 16), |t, n, d| {
            if d < 4 {
                (t + n) % 2 == 0
            } else {
                t == 0 && n == d - 4
            }
        })
    }

    #[test]
    fn stratification_is_a_partition() {
        let tensor = mixed_tensor();
        for threshold in 0..10 {
            let split = Stratifier::new(threshold).stratify(&tensor, BundleShape::default());
            assert!(
                split.is_partition(16),
                "threshold {threshold} broke the partition"
            );
        }
    }

    #[test]
    fn hot_features_go_dense_cold_features_go_sparse() {
        let split = Stratifier::new(2).stratify(&mixed_tensor(), BundleShape::default());
        for d in 0..4 {
            assert!(
                split.dense_features.contains(&d),
                "hot feature {d} should be dense"
            );
        }
        for d in 4..16 {
            assert!(
                split.sparse_features.contains(&d),
                "cold feature {d} should be sparse"
            );
        }
        assert!(split.dense_work_fraction() > 0.8);
    }

    #[test]
    fn zero_threshold_routes_every_active_feature_dense() {
        let split = Stratifier::new(0).stratify(&mixed_tensor(), BundleShape::default());
        // Every feature with at least one active bundle is "dense" at θs=0.
        assert!(split
            .sparse_features
            .iter()
            .all(|&d| { mixed_tensor().feature_count(d) == 0 || d >= 4 }));
        assert_eq!(split.threshold, 0);
    }

    #[test]
    fn huge_threshold_routes_everything_sparse() {
        let split = Stratifier::new(usize::MAX).stratify(&mixed_tensor(), BundleShape::default());
        assert!(split.dense_features.is_empty());
        assert_eq!(split.sparse_features.len(), 16);
        assert_eq!(split.dense_work_fraction(), 0.0);
    }

    #[test]
    fn work_conservation_across_the_split() {
        let tensor = mixed_tensor();
        let split = Stratifier::new(3).stratify(&tensor, BundleShape::default());
        assert_eq!(
            split.dense_spikes + split.sparse_spikes,
            tensor.count_ones()
        );
        let tags = TtbTags::from_tensor(&tensor, BundleShape::default());
        assert_eq!(
            split.dense_active_bundles + split.sparse_active_bundles,
            tags.active_bundles()
        );
    }

    #[test]
    fn threshold_selection_hits_target_fraction_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let tensor = SpikeTraceGenerator::new(TraceProfile::new(0.15).with_feature_spread(2.0))
            .generate(TensorShape::new(8, 64, 128), &mut rng);
        for target in [0.25, 0.5, 0.75] {
            let threshold =
                Stratifier::threshold_for_dense_fraction(&tensor, BundleShape::default(), target);
            let split = Stratifier::new(threshold).stratify(&tensor, BundleShape::default());
            let fraction = split.dense_feature_fraction();
            assert!(
                (fraction - target).abs() < 0.25,
                "target {target}, got {fraction} (threshold {threshold})"
            );
        }
    }

    #[test]
    fn empty_tensor_routes_everything_sparse() {
        let tensor = SpikeTensor::zeros(TensorShape::new(4, 8, 8));
        let split = Stratifier::new(0).stratify(&tensor, BundleShape::default());
        assert!(split.dense_features.is_empty());
        assert_eq!(split.sparse_features.len(), 8);
        assert_eq!(split.dense_work_fraction(), 0.0);
    }
}
