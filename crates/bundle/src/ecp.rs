//! Error-Constrained Token-Time-Bundle Pruning (ECP, §5.1 / Fig. 7 of the
//! paper).
//!
//! ECP exploits the binary nature of spiking queries and keys: the number of
//! *active bundles* in a Q (or K) bundle row, counted across all features, is
//! an upper bound on every attention score any token in that bundle row can
//! produce, because each score is a sum of at most one `1` per feature. A
//! bundle row whose active-bundle count is below the pruning threshold `θp`
//! can therefore be removed *before* computing the attention map while
//! guaranteeing that every score lost is smaller than `θp`.
//!
//! Pruning compounds: removing Q bundle rows removes rows of the score matrix
//! `S` and rows of the output `Y`; removing K bundle rows removes columns of
//! `S` and the corresponding rows of `V` that would have been loaded.

use bishop_spiketensor::SpikeTensor;

use crate::ttb::{BundleShape, TtbTags};

/// ECP configuration: the pruning thresholds for queries and keys and the
/// bundle shape used to form bundle rows.
///
/// The paper uses `θp = 6` for the static-image and speech models and
/// `θp = 10` for DVS-Gesture, with the same threshold applied to Q and K.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcpConfig {
    /// Pruning threshold `θ_{p,Q}` applied to query bundle rows.
    pub theta_q: u32,
    /// Pruning threshold `θ_{p,K}` applied to key bundle rows.
    pub theta_k: u32,
    /// Bundle shape used to form bundle rows.
    pub bundle: BundleShape,
}

impl EcpConfig {
    /// Creates a configuration with the same threshold for Q and K.
    pub fn uniform(theta: u32, bundle: BundleShape) -> Self {
        Self {
            theta_q: theta,
            theta_k: theta,
            bundle,
        }
    }

    /// The error bound guaranteed by this configuration: every pruned
    /// attention-score entry is strictly smaller than this value.
    pub fn error_bound(&self) -> u32 {
        self.theta_q.max(self.theta_k)
    }
}

/// The outcome of applying ECP to one attention layer's Q/K/V tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct EcpResult {
    /// Bundle-row coordinates `(bt, bn)` of Q kept after pruning.
    pub q_kept_rows: Vec<(usize, usize)>,
    /// Bundle-row coordinates `(bt, bn)` of K kept after pruning.
    pub k_kept_rows: Vec<(usize, usize)>,
    /// Total number of bundle rows per tensor.
    pub total_rows: usize,
    /// Q with pruned bundle rows zeroed out.
    pub pruned_q: SpikeTensor,
    /// K with pruned bundle rows zeroed out.
    pub pruned_k: SpikeTensor,
    /// V with the bundle rows corresponding to pruned K rows zeroed out
    /// (those rows of V would never be read when computing `Y = S·V`).
    pub pruned_v: SpikeTensor,
    /// The configuration that produced this result.
    pub config: EcpConfig,
}

impl EcpResult {
    /// Fraction of Q bundle rows retained.
    pub fn q_retention(&self) -> f64 {
        self.q_kept_rows.len() as f64 / self.total_rows as f64
    }

    /// Fraction of K bundle rows retained.
    pub fn k_retention(&self) -> f64 {
        self.k_kept_rows.len() as f64 / self.total_rows as f64
    }

    /// Fraction of the attention-score computation (`S = Q·Kᵀ`) that remains
    /// after pruning: retained rows × retained columns.
    pub fn score_work_fraction(&self) -> f64 {
        self.q_retention() * self.k_retention()
    }

    /// Fraction of the `Y = S·V` computation that remains: retained score
    /// rows × retained V rows.
    pub fn output_work_fraction(&self) -> f64 {
        self.q_retention() * self.k_retention()
    }

    /// Fraction of Q/K/V/Y memory traffic that remains. Q and Y scale with
    /// the Q retention, K and V with the K retention.
    pub fn memory_access_fraction(&self) -> f64 {
        0.5 * self.q_retention() + 0.5 * self.k_retention()
    }

    /// The guaranteed bound on any attention-score value lost to pruning.
    pub fn error_bound(&self) -> u32 {
        self.config.error_bound()
    }
}

/// Applies ECP to the Q/K/V tensors of one attention layer.
///
/// # Panics
///
/// Panics if the three tensors do not share the same shape.
///
/// ```
/// use bishop_bundle::{BundleShape, EcpConfig, ecp};
/// use bishop_spiketensor::{SpikeTensor, TensorShape};
///
/// let shape = TensorShape::new(4, 8, 16);
/// // Tokens 0..4 are busy, tokens 4..8 almost silent.
/// let q = SpikeTensor::from_fn(shape, |_, n, d| n < 4 && d % 2 == 0);
/// let k = q.clone();
/// let v = SpikeTensor::ones(shape);
/// let result = ecp::apply(&q, &k, &v, EcpConfig::uniform(4, BundleShape::new(2, 4)));
/// // The silent token bundle is pruned away, keeping half of the rows.
/// assert!(result.q_retention() <= 0.5 + 1e-9);
/// ```
pub fn apply(q: &SpikeTensor, k: &SpikeTensor, v: &SpikeTensor, config: EcpConfig) -> EcpResult {
    assert_eq!(q.shape(), k.shape(), "Q and K must have the same shape");
    assert_eq!(q.shape(), v.shape(), "Q and V must have the same shape");

    let q_tags = TtbTags::from_tensor(q, config.bundle);
    let k_tags = TtbTags::from_tensor(k, config.bundle);
    let grid = q_tags.grid();

    let mut q_kept_rows = Vec::new();
    let mut k_kept_rows = Vec::new();
    for (bt, bn) in grid.iter_bundles() {
        if q_tags.active_in_row(bt, bn) as u32 >= config.theta_q {
            q_kept_rows.push((bt, bn));
        }
        if k_tags.active_in_row(bt, bn) as u32 >= config.theta_k {
            k_kept_rows.push((bt, bn));
        }
    }

    let keep_mask = |kept: &[(usize, usize)]| {
        let mut mask = vec![false; grid.bundles_per_feature()];
        for &(bt, bn) in kept {
            mask[bt * grid.token_bundles() + bn] = true;
        }
        mask
    };
    let q_mask = keep_mask(&q_kept_rows);
    let k_mask = keep_mask(&k_kept_rows);

    // Pruning drops whole feature rows, so the filter clears the packed row
    // words of every (t, n) in a pruned bundle row and copies nothing else.
    let shape = q.shape();
    let filter = |tensor: &SpikeTensor, mask: &[bool]| {
        let mut pruned = tensor.clone();
        for t in 0..shape.timesteps {
            for n in 0..shape.tokens {
                let (bt, bn) = grid.bundle_of(t, n);
                if !mask[bt * grid.token_bundles() + bn] {
                    pruned.clear_row(t, n);
                }
            }
        }
        pruned
    };

    let pruned_q = filter(q, &q_mask);
    let pruned_k = filter(k, &k_mask);
    // V rows correspond to K tokens in Y = S·V: rows whose K bundle row was
    // pruned are never accessed.
    let pruned_v = filter(v, &k_mask);

    EcpResult {
        q_kept_rows,
        k_kept_rows,
        total_rows: grid.bundles_per_feature(),
        pruned_q,
        pruned_k,
        pruned_v,
        config,
    }
}

/// Computes, by brute force, the maximum absolute error that pruning
/// introduced into any attention-score entry: `max |Q·Kᵀ − Q'·K'ᵀ|` over all
/// timesteps and token pairs (full feature dimension). Used by tests and the
/// experiment harness to verify the ECP error bound empirically.
///
/// Word-parallel: both the full and the pruned score of a token pair are
/// AND+popcount [`RowBits`](bishop_spiketensor::RowBits) dots over the
/// packed feature rows, instead of four scalar `get` calls per
/// `(t, i, j, d)`. Bit-for-bit identical to [`max_score_error_reference`].
pub fn max_score_error(
    q: &SpikeTensor,
    k: &SpikeTensor,
    pruned_q: &SpikeTensor,
    pruned_k: &SpikeTensor,
) -> u32 {
    assert_eq!(q.shape(), k.shape(), "Q and K must share a shape");
    assert_eq!(q.shape(), pruned_q.shape(), "pruned Q must share Q's shape");
    assert_eq!(k.shape(), pruned_k.shape(), "pruned K must share K's shape");
    let shape = q.shape();
    let mut max_err = 0u32;
    for t in 0..shape.timesteps {
        for i in 0..shape.tokens {
            let q_row = q.row_words(t, i);
            let pq_row = pruned_q.row_words(t, i);
            for j in 0..shape.tokens {
                let full = q_row.dot(&k.row_words(t, j));
                let pruned = pq_row.dot(&pruned_k.row_words(t, j));
                max_err = max_err.max(full - pruned.min(full));
            }
        }
    }
    max_err
}

/// Scalar reference implementation of [`max_score_error`], kept for
/// differential testing of the word-parallel ECP error accounting.
pub fn max_score_error_reference(
    q: &SpikeTensor,
    k: &SpikeTensor,
    pruned_q: &SpikeTensor,
    pruned_k: &SpikeTensor,
) -> u32 {
    assert_eq!(q.shape(), k.shape(), "Q and K must share a shape");
    let shape = q.shape();
    let mut max_err = 0u32;
    for t in 0..shape.timesteps {
        for i in 0..shape.tokens {
            for j in 0..shape.tokens {
                let mut full = 0u32;
                let mut pruned = 0u32;
                for d in 0..shape.features {
                    if q.get(t, i, d) && k.get(t, j, d) {
                        full += 1;
                    }
                    if pruned_q.get(t, i, d) && pruned_k.get(t, j, d) {
                        pruned += 1;
                    }
                }
                max_err = max_err.max(full - pruned.min(full));
            }
        }
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_spiketensor::{SpikeTraceGenerator, TensorShape, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_qkv(
        density_q: f64,
        density_k: f64,
        seed: u64,
    ) -> (SpikeTensor, SpikeTensor, SpikeTensor) {
        let shape = TensorShape::new(4, 16, 32);
        let mut rng = StdRng::seed_from_u64(seed);
        let q = SpikeTraceGenerator::new(TraceProfile::new(density_q).with_feature_spread(1.5))
            .generate(shape, &mut rng);
        let k = SpikeTraceGenerator::new(TraceProfile::new(density_k).with_feature_spread(1.5))
            .generate(shape, &mut rng);
        let v = SpikeTraceGenerator::new(TraceProfile::new(0.2)).generate(shape, &mut rng);
        (q, k, v)
    }

    #[test]
    fn zero_threshold_prunes_nothing() {
        let (q, k, v) = random_qkv(0.1, 0.1, 1);
        let result = apply(&q, &k, &v, EcpConfig::uniform(0, BundleShape::default()));
        assert_eq!(result.q_retention(), 1.0);
        assert_eq!(result.k_retention(), 1.0);
        assert_eq!(result.pruned_q, q);
        assert_eq!(result.pruned_k, k);
        assert_eq!(result.pruned_v, v);
    }

    #[test]
    fn huge_threshold_prunes_everything() {
        let (q, k, v) = random_qkv(0.1, 0.1, 2);
        let result = apply(
            &q,
            &k,
            &v,
            EcpConfig::uniform(10_000, BundleShape::default()),
        );
        assert_eq!(result.q_kept_rows.len(), 0);
        assert_eq!(result.k_kept_rows.len(), 0);
        assert_eq!(result.pruned_q.count_ones(), 0);
        assert_eq!(result.score_work_fraction(), 0.0);
    }

    #[test]
    fn pruning_is_monotone_in_threshold() {
        let (q, k, v) = random_qkv(0.08, 0.05, 3);
        let mut previous = f64::INFINITY;
        for theta in [0u32, 2, 4, 8, 16, 32] {
            let result = apply(
                &q,
                &k,
                &v,
                EcpConfig::uniform(theta, BundleShape::default()),
            );
            let kept = result.q_retention() + result.k_retention();
            assert!(
                kept <= previous + 1e-12,
                "retention should not increase with the threshold"
            );
            previous = kept;
        }
    }

    #[test]
    fn error_bound_holds_empirically() {
        for seed in 0..5 {
            let (q, k, v) = random_qkv(0.06, 0.04, 100 + seed);
            for theta in [2u32, 4, 6, 10] {
                let config = EcpConfig::uniform(theta, BundleShape::default());
                let result = apply(&q, &k, &v, config);
                let err = max_score_error(&q, &k, &result.pruned_q, &result.pruned_k);
                assert!(
                    err < config.error_bound().max(1),
                    "seed {seed}, θ={theta}: error {err} exceeded the bound {}",
                    config.error_bound()
                );
            }
        }
    }

    #[test]
    fn sparser_keys_are_pruned_more_than_queries() {
        // The paper observes K retains fewer tokens than Q after ECP because
        // K tends to be sparser.
        let (q, k, v) = random_qkv(0.12, 0.03, 7);
        let result = apply(&q, &k, &v, EcpConfig::uniform(6, BundleShape::default()));
        assert!(result.k_retention() <= result.q_retention());
    }

    #[test]
    fn compounding_reduces_score_work_quadratically() {
        let (q, k, v) = random_qkv(0.05, 0.05, 9);
        let result = apply(&q, &k, &v, EcpConfig::uniform(8, BundleShape::default()));
        let expected = result.q_retention() * result.k_retention();
        assert!((result.score_work_fraction() - expected).abs() < 1e-12);
        assert!(result.score_work_fraction() <= result.q_retention());
    }

    #[test]
    fn pruned_v_follows_k_rows() {
        let shape = TensorShape::new(2, 8, 8);
        let q = SpikeTensor::ones(shape);
        // K active only on the first token bundle.
        let k = SpikeTensor::from_fn(shape, |_, n, _| n < 4);
        let v = SpikeTensor::ones(shape);
        let result = apply(&q, &k, &v, EcpConfig::uniform(1, BundleShape::new(2, 4)));
        // K bundle row 1 is pruned; the corresponding V rows must be zeroed.
        for t in 0..2 {
            for n in 4..8 {
                for d in 0..8 {
                    assert!(!result.pruned_v.get(t, n, d));
                }
            }
        }
        // Retained rows of V are untouched.
        assert!(result.pruned_v.get(0, 0, 0));
    }

    #[test]
    fn retention_fractions_are_consistent_with_kept_rows() {
        let (q, k, v) = random_qkv(0.1, 0.08, 13);
        let result = apply(&q, &k, &v, EcpConfig::uniform(4, BundleShape::default()));
        assert!(
            (result.q_retention() * result.total_rows as f64 - result.q_kept_rows.len() as f64)
                .abs()
                < 1e-9
        );
        assert!(result.memory_access_fraction() <= 1.0);
        assert_eq!(result.error_bound(), 4);
    }

    #[test]
    #[should_panic(expected = "same shape")]
    fn mismatched_shapes_are_rejected() {
        let q = SpikeTensor::zeros(TensorShape::new(2, 4, 4));
        let k = SpikeTensor::zeros(TensorShape::new(2, 4, 8));
        let v = SpikeTensor::zeros(TensorShape::new(2, 4, 4));
        apply(&q, &k, &v, EcpConfig::uniform(1, BundleShape::default()));
    }
}
