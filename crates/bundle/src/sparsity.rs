//! Bundle-level sparsity statistics (the quantities visualised in Fig. 5,
//! Fig. 6 and Fig. 10 of the paper).

use bishop_spiketensor::SpikeTensor;

use crate::ttb::{BundleShape, TtbTags};

/// Summary of the bundle-level sparsity of one activation tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleSparsityStats {
    /// Spike-level density (fraction of positions that fired).
    pub spike_density: f64,
    /// Bundle-level density (fraction of TTBs that are active).
    pub ttb_density: f64,
    /// Total number of bundles.
    pub total_bundles: usize,
    /// Number of active bundles.
    pub active_bundles: usize,
    /// Number of active bundles per feature column.
    pub active_per_feature: Vec<usize>,
    /// Fraction of feature columns with no active bundle at all.
    pub silent_feature_fraction: f64,
    /// Mean spike count inside *active* bundles (how "full" an active bundle
    /// is; higher means better intra-bundle weight reuse).
    pub mean_spikes_per_active_bundle: f64,
}

impl BundleSparsityStats {
    /// Measures the statistics of `tensor` under bundle shape `bundle`.
    pub fn measure(tensor: &SpikeTensor, bundle: BundleShape) -> Self {
        let tags = TtbTags::from_tensor(tensor, bundle);
        Self::from_tags(tensor, &tags)
    }

    /// Measures the statistics from pre-computed tags (avoids re-tagging).
    pub fn from_tags(tensor: &SpikeTensor, tags: &TtbTags) -> Self {
        let active = tags.active_bundles();
        let total = tags.total_bundles();
        let features = tensor.shape().features;
        let active_per_feature = tags.active_per_feature();
        let silent = active_per_feature.iter().filter(|&&c| c == 0).count();
        let spikes = tensor.count_ones();
        Self {
            spike_density: tensor.density(),
            ttb_density: active as f64 / total as f64,
            total_bundles: total,
            active_bundles: active,
            active_per_feature,
            silent_feature_fraction: silent as f64 / features as f64,
            mean_spikes_per_active_bundle: if active == 0 {
                0.0
            } else {
                spikes as f64 / active as f64
            },
        }
    }

    /// Histogram of the number of active bundles per feature with `bins`
    /// equal-width bins over `[0, bundles_per_feature]`; returns the fraction
    /// of features falling in each bin (the "ratio of features" axis of
    /// Fig. 5).
    pub fn feature_histogram(&self, bins: usize) -> Vec<f64> {
        assert!(bins > 0, "histogram needs at least one bin");
        let features = self.active_per_feature.len();
        let bundles_per_feature = self.total_bundles / features.max(1);
        let mut histogram = vec![0usize; bins];
        for &count in &self.active_per_feature {
            let bin = if bundles_per_feature == 0 {
                0
            } else {
                (count * bins) / (bundles_per_feature + 1)
            };
            histogram[bin.min(bins - 1)] += 1;
        }
        histogram
            .into_iter()
            .map(|c| c as f64 / features as f64)
            .collect()
    }

    /// The skipping opportunity: fraction of bundles the accelerator does not
    /// have to process at all.
    pub fn skippable_fraction(&self) -> f64 {
        1.0 - self.ttb_density
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_spiketensor::{SpikeTraceGenerator, TensorShape, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stats_of_empty_tensor() {
        let tensor = SpikeTensor::zeros(TensorShape::new(4, 8, 4));
        let stats = BundleSparsityStats::measure(&tensor, BundleShape::default());
        assert_eq!(stats.spike_density, 0.0);
        assert_eq!(stats.ttb_density, 0.0);
        assert_eq!(stats.active_bundles, 0);
        assert_eq!(stats.silent_feature_fraction, 1.0);
        assert_eq!(stats.mean_spikes_per_active_bundle, 0.0);
        assert_eq!(stats.skippable_fraction(), 1.0);
    }

    #[test]
    fn stats_of_full_tensor() {
        let tensor = SpikeTensor::ones(TensorShape::new(4, 8, 4));
        let stats = BundleSparsityStats::measure(&tensor, BundleShape::new(2, 4));
        assert_eq!(stats.spike_density, 1.0);
        assert_eq!(stats.ttb_density, 1.0);
        assert_eq!(stats.silent_feature_fraction, 0.0);
        assert_eq!(stats.mean_spikes_per_active_bundle, 8.0);
        assert_eq!(stats.skippable_fraction(), 0.0);
    }

    #[test]
    fn ttb_density_exceeds_spike_density_for_scattered_firing() {
        // A single spike activates a whole bundle, so TTB density >= spike
        // density (the paper reports e.g. 6.34 % spikes vs 11.16 % TTBs).
        let mut rng = StdRng::seed_from_u64(3);
        let tensor = SpikeTraceGenerator::new(TraceProfile::new(0.05))
            .generate(TensorShape::new(8, 64, 64), &mut rng);
        let stats = BundleSparsityStats::measure(&tensor, BundleShape::new(2, 4));
        assert!(stats.ttb_density >= stats.spike_density);
    }

    #[test]
    fn clustering_lowers_ttb_density_at_fixed_spike_density() {
        let mut rng = StdRng::seed_from_u64(4);
        let shape = TensorShape::new(8, 64, 64);
        let scattered = SpikeTraceGenerator::new(TraceProfile::new(0.05)).generate(shape, &mut rng);
        let clustered =
            SpikeTraceGenerator::new(TraceProfile::new(0.05).with_clustering(2, 4, 6.0))
                .generate(shape, &mut rng);
        let bundle = BundleShape::new(2, 4);
        let s_scattered = BundleSparsityStats::measure(&scattered, bundle);
        let s_clustered = BundleSparsityStats::measure(&clustered, bundle);
        assert!(
            s_clustered.ttb_density < s_scattered.ttb_density,
            "clustered {} vs scattered {}",
            s_clustered.ttb_density,
            s_scattered.ttb_density
        );
    }

    #[test]
    fn feature_histogram_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let tensor = SpikeTraceGenerator::new(TraceProfile::new(0.1).with_feature_spread(2.0))
            .generate(TensorShape::new(8, 32, 32), &mut rng);
        let stats = BundleSparsityStats::measure(&tensor, BundleShape::default());
        let hist = stats.feature_histogram(10);
        assert_eq!(hist.len(), 10);
        assert!((hist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_tags_matches_measure() {
        let mut rng = StdRng::seed_from_u64(6);
        let tensor = SpikeTraceGenerator::new(TraceProfile::new(0.2))
            .generate(TensorShape::new(4, 16, 16), &mut rng);
        let tags = TtbTags::from_tensor(&tensor, BundleShape::default());
        assert_eq!(
            BundleSparsityStats::from_tags(&tensor, &tags),
            BundleSparsityStats::measure(&tensor, BundleShape::default())
        );
    }
}
