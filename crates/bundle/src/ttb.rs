//! Token-Time Bundle geometry and activity tags.

use bishop_spiketensor::words::simd;
use bishop_spiketensor::{SpikeTensor, TensorShape};

/// Shape of a Token-Time Bundle: `BSn` tokens × `BSt` timesteps.
///
/// The paper's design-space exploration (Fig. 16) finds bundle volumes
/// (`BSt · BSn`) between 4 and 8 to be near optimal; [`BundleShape::default`]
/// uses `(BSt, BSn) = (2, 4)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BundleShape {
    /// Number of timesteps packed per bundle (`BSt`).
    pub timesteps: usize,
    /// Number of tokens packed per bundle (`BSn`).
    pub tokens: usize,
}

impl Default for BundleShape {
    fn default() -> Self {
        Self {
            timesteps: 2,
            tokens: 4,
        }
    }
}

impl BundleShape {
    /// Creates a bundle shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(timesteps: usize, tokens: usize) -> Self {
        assert!(
            timesteps > 0 && tokens > 0,
            "bundle dimensions must be non-zero"
        );
        Self { timesteps, tokens }
    }

    /// The bundle volume `BSt · BSn` (number of spatiotemporal positions per
    /// bundle).
    pub fn volume(&self) -> usize {
        self.timesteps * self.tokens
    }
}

/// The grid of bundles covering a `T × N × D` activation tensor.
///
/// There are `⌈T/BSt⌉ × ⌈N/BSn⌉` bundles per feature column; bundles at the
/// upper edges may be partial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TtbGrid {
    tensor: TensorShape,
    bundle: BundleShape,
}

impl TtbGrid {
    /// Creates the bundle grid for `tensor` with bundle shape `bundle`.
    pub fn new(tensor: TensorShape, bundle: BundleShape) -> Self {
        Self { tensor, bundle }
    }

    /// The underlying tensor shape.
    pub fn tensor_shape(&self) -> TensorShape {
        self.tensor
    }

    /// The bundle shape.
    pub fn bundle_shape(&self) -> BundleShape {
        self.bundle
    }

    /// Number of bundle rows along the time axis (`⌈T/BSt⌉`).
    pub fn time_bundles(&self) -> usize {
        self.tensor.timesteps.div_ceil(self.bundle.timesteps)
    }

    /// Number of bundle rows along the token axis (`⌈N/BSn⌉`).
    pub fn token_bundles(&self) -> usize {
        self.tensor.tokens.div_ceil(self.bundle.tokens)
    }

    /// Number of bundles per feature column.
    pub fn bundles_per_feature(&self) -> usize {
        self.time_bundles() * self.token_bundles()
    }

    /// Total number of bundles across all features.
    pub fn total_bundles(&self) -> usize {
        self.bundles_per_feature() * self.tensor.features
    }

    /// The (clamped) timestep and token ranges covered by bundle `(bt, bn)`.
    ///
    /// # Panics
    ///
    /// Panics if the bundle coordinates are out of range.
    pub fn bundle_region(&self, bt: usize, bn: usize) -> ((usize, usize), (usize, usize)) {
        assert!(
            bt < self.time_bundles() && bn < self.token_bundles(),
            "bundle ({bt}, {bn}) out of range"
        );
        let t0 = bt * self.bundle.timesteps;
        let t1 = (t0 + self.bundle.timesteps).min(self.tensor.timesteps);
        let n0 = bn * self.bundle.tokens;
        let n1 = (n0 + self.bundle.tokens).min(self.tensor.tokens);
        ((t0, t1), (n0, n1))
    }

    /// The bundle coordinates containing position `(t, n)`.
    pub fn bundle_of(&self, t: usize, n: usize) -> (usize, usize) {
        assert!(
            t < self.tensor.timesteps && n < self.tensor.tokens,
            "position ({t}, {n}) out of range"
        );
        (t / self.bundle.timesteps, n / self.bundle.tokens)
    }

    /// Iterates over all `(bt, bn)` bundle coordinates.
    pub fn iter_bundles(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let token_bundles = self.token_bundles();
        (0..self.time_bundles()).flat_map(move |bt| (0..token_bundles).map(move |bn| (bt, bn)))
    }
}

/// Activity tags of every Token-Time Bundle of a spike tensor.
///
/// The tag of bundle `(bt, bn, d)` is the `L0` norm (spike count) of the
/// activations falling inside it (Eq. 9 of the paper). A bundle is *active*
/// when its tag is non-zero; inactive bundles are skipped by the Bishop
/// dataflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TtbTags {
    grid: TtbGrid,
    /// Tags indexed `((bt * token_bundles) + bn) * features + d`.
    tags: Vec<u32>,
}

impl TtbTags {
    /// Computes the tags of `tensor` under bundle shape `bundle`.
    ///
    /// Word-parallel: walks each `(t, n)` feature row once, resolves the
    /// row's bundle coordinates a single time, and enumerates the row's
    /// active features with the `trailing_zeros` set-bit iterator — no
    /// per-spike coordinate division. Bit-for-bit identical to
    /// [`TtbTags::from_tensor_reference`].
    pub fn from_tensor(tensor: &SpikeTensor, bundle: BundleShape) -> Self {
        let shape = tensor.shape();
        let grid = TtbGrid::new(shape, bundle);
        let features = shape.features;
        let kernels = simd::active();
        let mut tags = vec![0u32; grid.bundles_per_feature() * features];
        // Per-row logical words, reused across rows; the row view's masked
        // logical reads keep tail bits clear, satisfying the masked_inc
        // contract.
        let mut row_bits: Vec<u64> = Vec::with_capacity(features.div_ceil(64));
        for t in 0..shape.timesteps {
            for n in 0..shape.tokens {
                let (bt, bn) = grid.bundle_of(t, n);
                let base = (bt * grid.token_bundles() + bn) * features;
                let row = tensor.row_words(t, n);
                row_bits.clear();
                row_bits.extend((0..row.word_count()).map(|i| row.word(i)));
                kernels.masked_inc(&mut tags[base..base + features], &row_bits);
            }
        }
        Self { grid, tags }
    }

    /// Scalar reference implementation of [`TtbTags::from_tensor`], kept for
    /// differential testing and the before/after kernel benchmarks.
    pub fn from_tensor_reference(tensor: &SpikeTensor, bundle: BundleShape) -> Self {
        let grid = TtbGrid::new(tensor.shape(), bundle);
        let features = tensor.shape().features;
        let mut tags = vec![0u32; grid.bundles_per_feature() * features];
        for (t, n, d) in tensor.iter_active() {
            let (bt, bn) = grid.bundle_of(t, n);
            let idx = (bt * grid.token_bundles() + bn) * features + d;
            tags[idx] += 1;
        }
        Self { grid, tags }
    }

    /// The bundle grid the tags are defined on.
    pub fn grid(&self) -> TtbGrid {
        self.grid
    }

    fn index(&self, bt: usize, bn: usize, d: usize) -> usize {
        let features = self.grid.tensor_shape().features;
        assert!(
            bt < self.grid.time_bundles() && bn < self.grid.token_bundles() && d < features,
            "bundle tag index ({bt}, {bn}, {d}) out of range"
        );
        (bt * self.grid.token_bundles() + bn) * features + d
    }

    /// Spike count of bundle `(bt, bn, d)`.
    pub fn tag(&self, bt: usize, bn: usize, d: usize) -> u32 {
        self.tags[self.index(bt, bn, d)]
    }

    /// Whether bundle `(bt, bn, d)` contains at least one spike.
    pub fn is_active(&self, bt: usize, bn: usize, d: usize) -> bool {
        self.tag(bt, bn, d) > 0
    }

    /// Total number of bundles.
    pub fn total_bundles(&self) -> usize {
        self.tags.len()
    }

    /// Number of active bundles.
    pub fn active_bundles(&self) -> usize {
        self.tags.iter().filter(|&&t| t > 0).count()
    }

    /// Fraction of bundles that are active ("TTB density").
    pub fn active_fraction(&self) -> f64 {
        self.active_bundles() as f64 / self.total_bundles() as f64
    }

    /// Sum of all tags — the bundle-level sparsity loss contribution of this
    /// tensor (Eq. 10 uses the sum of `L0` tags; here each tag already *is*
    /// the bundle's spike count, so this equals the total spike count).
    pub fn tag_sum(&self) -> u64 {
        self.tags.iter().map(|&t| u64::from(t)).sum()
    }

    /// Number of active bundles per feature column, in feature order.
    pub fn active_per_feature(&self) -> Vec<usize> {
        let features = self.grid.tensor_shape().features;
        let mut counts = vec![0usize; features];
        for (i, &tag) in self.tags.iter().enumerate() {
            if tag > 0 {
                counts[i % features] += 1;
            }
        }
        counts
    }

    /// Number of active bundles of feature `d`.
    pub fn active_for_feature(&self, d: usize) -> usize {
        let mut count = 0;
        for bt in 0..self.grid.time_bundles() {
            for bn in 0..self.grid.token_bundles() {
                if self.is_active(bt, bn, d) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Number of features with no active bundle at all (BSA pushes a large
    /// fraction of features into this regime — Fig. 5).
    pub fn silent_features(&self) -> usize {
        self.active_per_feature()
            .iter()
            .filter(|&&c| c == 0)
            .count()
    }

    /// Number of active bundles in bundle row `(bt, bn)` counted across all
    /// features. This is the `n_ab` quantity ECP compares against the pruning
    /// threshold: because Q/K are binary, every attention score produced by
    /// the tokens inside this bundle row is bounded by this count.
    pub fn active_in_row(&self, bt: usize, bn: usize) -> usize {
        let features = self.grid.tensor_shape().features;
        (0..features).filter(|&d| self.is_active(bt, bn, d)).count()
    }

    /// Per-bundle-row active-bundle counts, indexed `[bt][bn]` flattened as
    /// `bt * token_bundles + bn`.
    pub fn active_per_row(&self) -> Vec<usize> {
        let mut counts = Vec::with_capacity(self.grid.bundles_per_feature());
        for bt in 0..self.grid.time_bundles() {
            for bn in 0..self.grid.token_bundles() {
                counts.push(self.active_in_row(bt, bn));
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tensor() -> SpikeTensor {
        // 4 timesteps, 8 tokens, 2 features.
        let mut t = SpikeTensor::zeros(TensorShape::new(4, 8, 2));
        t.set(0, 0, 0, true);
        t.set(1, 1, 0, true); // same bundle as above for (2,4) bundling
        t.set(3, 7, 1, true);
        t
    }

    #[test]
    fn grid_dimensions_round_up() {
        let grid = TtbGrid::new(TensorShape::new(10, 64, 384), BundleShape::new(4, 6));
        assert_eq!(grid.time_bundles(), 3);
        assert_eq!(grid.token_bundles(), 11);
        assert_eq!(grid.bundles_per_feature(), 33);
        assert_eq!(grid.total_bundles(), 33 * 384);
    }

    #[test]
    fn bundle_region_clamps_at_edges() {
        let grid = TtbGrid::new(TensorShape::new(10, 64, 4), BundleShape::new(4, 6));
        let ((t0, t1), (n0, n1)) = grid.bundle_region(2, 10);
        assert_eq!((t0, t1), (8, 10));
        assert_eq!((n0, n1), (60, 64));
    }

    #[test]
    fn bundle_of_and_region_are_consistent() {
        let grid = TtbGrid::new(TensorShape::new(10, 64, 4), BundleShape::new(3, 5));
        for t in 0..10 {
            for n in 0..64 {
                let (bt, bn) = grid.bundle_of(t, n);
                let ((t0, t1), (n0, n1)) = grid.bundle_region(bt, bn);
                assert!(t0 <= t && t < t1, "t={t} not in [{t0},{t1})");
                assert!(n0 <= n && n < n1, "n={n} not in [{n0},{n1})");
            }
        }
    }

    #[test]
    fn iter_bundles_enumerates_grid() {
        let grid = TtbGrid::new(TensorShape::new(4, 6, 1), BundleShape::new(2, 4));
        let bundles: Vec<_> = grid.iter_bundles().collect();
        assert_eq!(bundles.len(), grid.bundles_per_feature());
        assert_eq!(bundles[0], (0, 0));
        assert_eq!(*bundles.last().unwrap(), (1, 1));
    }

    #[test]
    fn tags_count_spikes_per_bundle() {
        let tags = TtbTags::from_tensor(&sample_tensor(), BundleShape::new(2, 4));
        // Spikes (0,0,0) and (1,1,0) fall in bundle (0,0) of feature 0.
        assert_eq!(tags.tag(0, 0, 0), 2);
        assert!(tags.is_active(0, 0, 0));
        // Spike (3,7,1) falls in bundle (1,1) of feature 1.
        assert_eq!(tags.tag(1, 1, 1), 1);
        assert_eq!(tags.active_bundles(), 2);
        assert_eq!(tags.total_bundles(), 2 * 2 * 2);
        assert_eq!(tags.tag_sum(), 3);
    }

    #[test]
    fn active_fraction_matches_definition() {
        let tags = TtbTags::from_tensor(&sample_tensor(), BundleShape::new(2, 4));
        assert!((tags.active_fraction() - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn per_feature_and_silent_counts() {
        let tags = TtbTags::from_tensor(&sample_tensor(), BundleShape::new(2, 4));
        assert_eq!(tags.active_per_feature(), vec![1, 1]);
        assert_eq!(tags.silent_features(), 0);
        assert_eq!(tags.active_for_feature(0), 1);

        let empty = SpikeTensor::zeros(TensorShape::new(4, 8, 3));
        let tags = TtbTags::from_tensor(&empty, BundleShape::default());
        assert_eq!(tags.silent_features(), 3);
        assert_eq!(tags.active_bundles(), 0);
    }

    #[test]
    fn row_counts_bound_token_activity() {
        let tags = TtbTags::from_tensor(&sample_tensor(), BundleShape::new(2, 4));
        // Row (0,0) has an active bundle only on feature 0.
        assert_eq!(tags.active_in_row(0, 0), 1);
        assert_eq!(tags.active_in_row(1, 1), 1);
        assert_eq!(tags.active_in_row(0, 1), 0);
        assert_eq!(tags.active_per_row(), vec![1, 0, 0, 1]);
    }

    #[test]
    fn full_tensor_has_all_bundles_active() {
        let tensor = SpikeTensor::ones(TensorShape::new(4, 8, 2));
        let tags = TtbTags::from_tensor(&tensor, BundleShape::new(3, 3));
        assert_eq!(tags.active_bundles(), tags.total_bundles());
        assert_eq!(tags.active_fraction(), 1.0);
        assert_eq!(tags.silent_features(), 0);
    }

    #[test]
    fn every_spike_lands_in_exactly_one_bundle() {
        let tensor = sample_tensor();
        let tags = TtbTags::from_tensor(&tensor, BundleShape::new(2, 4));
        assert_eq!(tags.tag_sum(), tensor.count_ones() as u64);
    }

    #[test]
    fn default_bundle_shape_is_in_the_papers_sweet_spot() {
        let shape = BundleShape::default();
        assert!(shape.volume() >= 4 && shape.volume() <= 8);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bundle_dimension_rejected() {
        BundleShape::new(0, 4);
    }
}
