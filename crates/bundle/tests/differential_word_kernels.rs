//! Differential property tests: the word-parallel bundle kernels (TTB
//! tagging, sparsity loss, ECP row filtering and error accounting) must be
//! bit-for-bit identical to the retained scalar `*_reference`
//! implementations, including on feature widths that are not a multiple
//! of 64.

use bishop_bundle::{
    bundle_sparsity_loss, bundle_sparsity_loss_reference, ecp, BundleShape, EcpConfig, TtbTags,
};
use bishop_spiketensor::{SpikeTensor, TensorShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tensor(shape: TensorShape, density: f64, seed: u64) -> SpikeTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    SpikeTensor::from_fn(shape, |_, _, _| rng.gen_bool(density))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ttb_tags_match_reference(
        t in 1usize..8,
        n in 1usize..12,
        d_index in 0usize..6,
        bt in 1usize..4,
        bn in 1usize..5,
        density in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        const FEATURES: [usize; 6] = [1, 17, 63, 64, 65, 130];
        let shape = TensorShape::new(t, n, FEATURES[d_index % FEATURES.len()]);
        let tensor = random_tensor(shape, density, seed);
        let bundle = BundleShape::new(bt, bn);
        let word = TtbTags::from_tensor(&tensor, bundle);
        let scalar = TtbTags::from_tensor_reference(&tensor, bundle);
        prop_assert_eq!(word, scalar);
    }

    #[test]
    fn sparsity_loss_matches_reference(
        t in 1usize..6,
        n in 1usize..10,
        d_index in 0usize..6,
        density in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        const FEATURES: [usize; 6] = [1, 17, 63, 64, 65, 130];
        let shape = TensorShape::new(t, n, FEATURES[d_index % FEATURES.len()]);
        let a = random_tensor(shape, density, seed);
        let b = random_tensor(shape, density * 0.5, seed ^ 0xAA);
        let bundle = BundleShape::default();
        prop_assert_eq!(
            bundle_sparsity_loss(&[&a, &b], bundle),
            bundle_sparsity_loss_reference(&[&a, &b], bundle)
        );
    }

    #[test]
    fn ecp_apply_matches_scalar_row_filter(
        t in 2usize..6,
        n in 4usize..16,
        d_index in 0usize..6,
        theta in 0u32..12,
        density in 0.01f64..0.3,
        seed in any::<u64>(),
    ) {
        const FEATURES: [usize; 6] = [8, 17, 63, 64, 65, 130];
        let shape = TensorShape::new(t, n, FEATURES[d_index % FEATURES.len()]);
        let q = random_tensor(shape, density, seed);
        let k = random_tensor(shape, density, seed ^ 0xB0B);
        let v = random_tensor(shape, 0.3, seed ^ 0xCAFE);
        let config = EcpConfig::uniform(theta, BundleShape::default());
        let result = ecp::apply(&q, &k, &v, config);

        // Scalar reconstruction of the row filter from the kept-row lists.
        let grid = TtbTags::from_tensor_reference(&q, config.bundle).grid();
        let keep = |kept: &[(usize, usize)], source: &SpikeTensor| {
            SpikeTensor::from_fn(source.shape(), |ti, ni, d| {
                kept.contains(&grid.bundle_of(ti, ni)) && source.get(ti, ni, d)
            })
        };
        prop_assert_eq!(&result.pruned_q, &keep(&result.q_kept_rows, &q));
        prop_assert_eq!(&result.pruned_k, &keep(&result.k_kept_rows, &k));
        prop_assert_eq!(&result.pruned_v, &keep(&result.k_kept_rows, &v));

        // Word-parallel error accounting agrees with the scalar loop and
        // still respects the configured bound.
        let word = ecp::max_score_error(&q, &k, &result.pruned_q, &result.pruned_k);
        let scalar = ecp::max_score_error_reference(&q, &k, &result.pruned_q, &result.pruned_k);
        prop_assert_eq!(word, scalar);
        prop_assert!(word < config.error_bound().max(1));
    }
}
