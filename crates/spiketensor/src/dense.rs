//! Dense floating-point matrices for weights and synaptic integration.

use rand::Rng;

/// A row-major dense `rows × cols` matrix of `f32` values.
///
/// Used for the multi-bit weight matrices of the MLP/projection layers
/// (`D × D`-shaped in the paper), for membrane-potential accumulators, and
/// for the integer-valued attention scores `S` before they are thresholded
/// back into spikes.
///
/// ```
/// use bishop_spiketensor::DenseMatrix;
/// let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = DenseMatrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        let data = rows.iter().flatten().copied().collect();
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f` at every `(row, col)`.
    pub fn from_fn<F>(rows: usize, cols: usize, mut f: F) -> Self
    where
        F: FnMut(usize, usize) -> f32,
    {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Fills a matrix with samples drawn uniformly from `[-scale, scale]`.
    /// Deterministic given the RNG state; used for synthetic weights.
    pub fn random_uniform<R: Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-scale..=scale))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Writes element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Adds `value` to element `(row, col)`.
    #[inline]
    pub fn add_assign(&mut self, row: usize, col: usize, value: f32) {
        let v = self.get(row, col);
        self.set(row, col, v + value);
    }

    /// Mutable borrow of row `row` as a slice (the accumulation target of
    /// the select-accumulate kernels).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Borrows one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Flat view of the underlying data in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Standard matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} . {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.add_assign(i, j, a * other.get(k, j));
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Elementwise sum with another matrix of identical dimensions.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add(&self, other: &DenseMatrix) -> DenseMatrix {
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "add dimension mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns a copy scaled by `factor`.
    pub fn scale(&self, factor: f32) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean absolute value of all elements.
    pub fn mean_abs(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().map(|v| v.abs()).sum::<f32>() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute elementwise difference with another matrix.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "max_abs_diff dimension mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Size in bytes when stored with `bits_per_element` bits per weight
    /// (the paper models multi-bit weights, typically 8-bit).
    pub fn storage_bytes(&self, bits_per_element: usize) -> usize {
        (self.rows * self.cols * bits_per_element).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_matmul_is_noop() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let id = DenseMatrix::identity(3);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn transpose_round_trips() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_and_scale() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0]]);
        let b = DenseMatrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 6.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn norms_and_sums() {
        let a = DenseMatrix::from_rows(&[vec![3.0, -4.0]]);
        assert_eq!(a.sum(), -1.0);
        assert_eq!(a.mean_abs(), 3.5);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn max_abs_diff_detects_largest_gap() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0]]);
        let b = DenseMatrix::from_rows(&[vec![1.5, -1.0]]);
        assert_eq!(a.max_abs_diff(&b), 3.0);
    }

    #[test]
    fn storage_bytes_uses_bit_width() {
        let a = DenseMatrix::zeros(16, 16);
        assert_eq!(a.storage_bytes(8), 256);
        assert_eq!(a.storage_bytes(4), 128);
        assert_eq!(a.storage_bytes(1), 32);
    }

    #[test]
    fn random_uniform_is_within_scale_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = DenseMatrix::random_uniform(8, 8, 0.5, &mut rng);
        assert!(a.as_slice().iter().all(|v| v.abs() <= 0.5));
        let mut rng2 = StdRng::seed_from_u64(7);
        let b = DenseMatrix::random_uniform(8, 8, 0.5, &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn row_view_is_contiguous() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
    }
}
