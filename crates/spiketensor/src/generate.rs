//! Density-controlled synthetic spike-trace generators.
//!
//! The paper evaluates Bishop on activation traces of spiking transformers
//! trained on CIFAR10/100, ImageNet-100, DVS-Gesture-128, and Google Speech
//! Commands. Those datasets and the PyTorch training stack are substituted
//! here (see `DESIGN.md`) by generators that reproduce the *statistics* of
//! those traces that the accelerator actually depends on:
//!
//! * overall firing density,
//! * the per-feature spread of densities (some features nearly silent, some
//!   hot — Fig. 10(a) of the paper),
//! * spatiotemporal clustering of spikes into bundles (firing is correlated
//!   across adjacent tokens/timesteps, which is what makes Token-Time
//!   Bundles effective).

use rand::Rng;

use crate::{SpikeTensor, TensorShape};

/// Statistical profile describing how a synthetic spike trace should look.
///
/// ```
/// use bishop_spiketensor::{SpikeTraceGenerator, TraceProfile, TensorShape};
/// use rand::SeedableRng;
///
/// let profile = TraceProfile::new(0.2).with_feature_spread(2.0);
/// let generator = SpikeTraceGenerator::new(profile);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let trace = generator.generate(TensorShape::new(4, 64, 128), &mut rng);
/// assert!((trace.density() - 0.2).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    mean_density: f64,
    feature_spread: f64,
    cluster_tokens: usize,
    cluster_timesteps: usize,
    cluster_boost: f64,
    silent_feature_fraction: f64,
}

impl TraceProfile {
    /// A profile with the given mean firing density and no feature-level or
    /// spatiotemporal structure.
    ///
    /// # Panics
    ///
    /// Panics if `mean_density` is not in `[0, 1]`.
    pub fn new(mean_density: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&mean_density),
            "mean density must be in [0, 1], got {mean_density}"
        );
        Self {
            mean_density,
            feature_spread: 0.0,
            cluster_tokens: 1,
            cluster_timesteps: 1,
            cluster_boost: 1.0,
            silent_feature_fraction: 0.0,
        }
    }

    /// Mean firing density of the profile.
    pub fn mean_density(&self) -> f64 {
        self.mean_density
    }

    /// Adds a per-feature density spread: feature densities are drawn from a
    /// distribution whose coefficient of variation grows with `spread`
    /// (0 = uniform; 2–3 ≈ the heavy-tailed distribution in Fig. 10(a)).
    pub fn with_feature_spread(mut self, spread: f64) -> Self {
        assert!(spread >= 0.0, "feature spread must be non-negative");
        self.feature_spread = spread;
        self
    }

    /// Makes a fraction of features completely silent (no spikes at all);
    /// BSA training pushes many features into this regime (Fig. 5: 9.3 % →
    /// 52.2 % of Q features with zero active bundles on Model 1).
    pub fn with_silent_features(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "silent feature fraction must be in [0, 1]"
        );
        self.silent_feature_fraction = fraction;
        self
    }

    /// Clusters firing into `(timesteps × tokens)` spatiotemporal blocks:
    /// within an "active" block the firing probability is multiplied by
    /// `boost`, outside it is lowered to preserve the overall mean density.
    /// This models the clustered firing that makes bundle-level skipping
    /// worthwhile.
    pub fn with_clustering(mut self, timesteps: usize, tokens: usize, boost: f64) -> Self {
        assert!(timesteps > 0 && tokens > 0, "cluster dims must be non-zero");
        assert!(boost >= 1.0, "cluster boost must be >= 1");
        self.cluster_timesteps = timesteps;
        self.cluster_tokens = tokens;
        self.cluster_boost = boost;
        self
    }

    /// Expands the profile into a per-feature density vector.
    fn feature_densities<R: Rng>(&self, features: usize, rng: &mut R) -> Vec<f64> {
        let mut densities = Vec::with_capacity(features);
        for _ in 0..features {
            if rng.gen_bool(self.silent_feature_fraction.clamp(0.0, 1.0)) {
                densities.push(0.0);
                continue;
            }
            let base = if self.feature_spread == 0.0 {
                self.mean_density
            } else {
                // Log-uniform multiplier around the mean: exp(U(-s, s)),
                // renormalised below so the realised mean stays on target.
                let u: f64 = rng.gen_range(-self.feature_spread..=self.feature_spread);
                self.mean_density * u.exp()
            };
            densities.push(base.clamp(0.0, 1.0));
        }
        // Renormalise so the mean over *all* features (including silent ones)
        // matches the requested mean density as closely as possible.
        let realised_mean: f64 = densities.iter().sum::<f64>() / features as f64;
        if realised_mean > 0.0 {
            let correction = self.mean_density / realised_mean;
            for d in &mut densities {
                *d = (*d * correction).clamp(0.0, 1.0);
            }
        }
        densities
    }
}

/// Generator that materialises [`TraceProfile`]s into [`SpikeTensor`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeTraceGenerator {
    profile: TraceProfile,
}

impl SpikeTraceGenerator {
    /// Creates a generator for the given profile.
    pub fn new(profile: TraceProfile) -> Self {
        Self { profile }
    }

    /// The profile this generator materialises.
    pub fn profile(&self) -> &TraceProfile {
        &self.profile
    }

    /// Generates a spike trace with the profile's statistics.
    pub fn generate<R: Rng>(&self, shape: TensorShape, rng: &mut R) -> SpikeTensor {
        let feature_density = self.profile.feature_densities(shape.features, rng);
        let cluster_t = self.profile.cluster_timesteps;
        let cluster_n = self.profile.cluster_tokens;
        let boost = self.profile.cluster_boost;

        // Decide which spatiotemporal clusters are "hot". A cluster is hot
        // with probability 1/boost so that hot-cluster boosting keeps the
        // expected density unchanged: E[p] = (1/boost)*boost*p + (1-1/boost)*~0.
        let clusters_t = shape.timesteps.div_ceil(cluster_t);
        let clusters_n = shape.tokens.div_ceil(cluster_n);
        let mut hot = vec![false; clusters_t * clusters_n];
        let hot_probability = (1.0 / boost).clamp(0.0, 1.0);
        for flag in &mut hot {
            *flag = rng.gen_bool(hot_probability);
        }
        let cold_scale = if boost > 1.0 { 0.15 } else { 1.0 };

        SpikeTensor::from_fn(shape, |t, n, d| {
            let base = feature_density[d];
            if base <= 0.0 {
                return false;
            }
            let cluster_index = (t / cluster_t) * clusters_n + (n / cluster_n);
            let p = if boost <= 1.0 {
                base
            } else if hot[cluster_index] {
                (base * boost).min(1.0)
            } else {
                base * cold_scale
            };
            rng.gen_bool(p.clamp(0.0, 1.0))
        })
    }

    /// Generates a trace whose per-feature densities are given explicitly;
    /// the profile's mean density and spread are ignored but its clustering
    /// is applied. Used to replay measured per-feature statistics.
    pub fn generate_with_feature_densities<R: Rng>(
        &self,
        shape: TensorShape,
        densities: &[f64],
        rng: &mut R,
    ) -> SpikeTensor {
        assert_eq!(
            densities.len(),
            shape.features,
            "need one density per feature"
        );
        SpikeTensor::from_fn(shape, |_, _, d| {
            let p = densities[d].clamp(0.0, 1.0);
            p > 0.0 && rng.gen_bool(p)
        })
    }
}

/// Convenience: a purely Bernoulli trace with the given density (no feature
/// or spatiotemporal structure).
pub fn bernoulli_trace<R: Rng>(shape: TensorShape, density: f64, rng: &mut R) -> SpikeTensor {
    SpikeTraceGenerator::new(TraceProfile::new(density)).generate(shape, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2025)
    }

    #[test]
    fn bernoulli_density_is_close_to_target() {
        let shape = TensorShape::new(8, 64, 128);
        let trace = bernoulli_trace(shape, 0.25, &mut rng());
        assert!((trace.density() - 0.25).abs() < 0.02);
    }

    #[test]
    fn zero_density_means_no_spikes() {
        let shape = TensorShape::new(4, 16, 32);
        let trace = bernoulli_trace(shape, 0.0, &mut rng());
        assert_eq!(trace.count_ones(), 0);
    }

    #[test]
    fn full_density_means_all_spikes() {
        let shape = TensorShape::new(2, 8, 8);
        let trace = bernoulli_trace(shape, 1.0, &mut rng());
        assert_eq!(trace.count_ones(), shape.len());
    }

    #[test]
    fn feature_spread_creates_uneven_columns_but_keeps_mean() {
        let shape = TensorShape::new(10, 64, 64);
        let profile = TraceProfile::new(0.2).with_feature_spread(2.5);
        let trace = SpikeTraceGenerator::new(profile).generate(shape, &mut rng());
        assert!((trace.density() - 0.2).abs() < 0.05);
        let densities: Vec<f64> = (0..shape.features)
            .map(|d| trace.feature_density(d))
            .collect();
        let max = densities.iter().cloned().fold(0.0, f64::max);
        let min = densities.iter().cloned().fold(1.0, f64::min);
        assert!(
            max - min > 0.2,
            "expected a wide per-feature spread, got {min}..{max}"
        );
    }

    #[test]
    fn silent_features_are_really_silent() {
        let shape = TensorShape::new(6, 32, 64);
        let profile = TraceProfile::new(0.3).with_silent_features(0.5);
        let trace = SpikeTraceGenerator::new(profile).generate(shape, &mut rng());
        let silent = (0..shape.features)
            .filter(|&d| trace.feature_count(d) == 0)
            .count();
        assert!(
            silent >= shape.features / 4,
            "expected a large number of silent features, got {silent}"
        );
    }

    #[test]
    fn clustering_concentrates_spikes_into_blocks() {
        let shape = TensorShape::new(8, 32, 32);
        let clustered = SpikeTraceGenerator::new(TraceProfile::new(0.1).with_clustering(4, 8, 4.0))
            .generate(shape, &mut rng());
        let uniform = SpikeTraceGenerator::new(TraceProfile::new(0.1)).generate(shape, &mut rng());

        // Count how many 4x8 blocks (per feature) are completely empty; the
        // clustered trace should have clearly more empty blocks.
        let count_empty = |trace: &SpikeTensor| {
            let mut empty = 0usize;
            for d in 0..shape.features {
                for bt in 0..shape.timesteps / 4 {
                    for bn in 0..shape.tokens / 8 {
                        if trace.count_in_region((bt * 4, bt * 4 + 4), (bn * 8, bn * 8 + 8), d) == 0
                        {
                            empty += 1;
                        }
                    }
                }
            }
            empty
        };
        assert!(
            count_empty(&clustered) > count_empty(&uniform),
            "clustered trace should have more empty bundles"
        );
    }

    #[test]
    fn explicit_feature_densities_are_respected() {
        let shape = TensorShape::new(10, 50, 4);
        let generator = SpikeTraceGenerator::new(TraceProfile::new(0.5));
        let trace =
            generator.generate_with_feature_densities(shape, &[0.0, 0.1, 0.5, 0.9], &mut rng());
        assert_eq!(trace.feature_count(0), 0);
        assert!(trace.feature_density(3) > trace.feature_density(1));
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let shape = TensorShape::new(4, 16, 16);
        let generator = SpikeTraceGenerator::new(TraceProfile::new(0.3).with_feature_spread(1.0));
        let a = generator.generate(shape, &mut StdRng::seed_from_u64(1));
        let b = generator.generate(shape, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_density_is_rejected() {
        TraceProfile::new(1.5);
    }
}
