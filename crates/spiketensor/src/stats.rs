//! Summary statistics over spike tensors.

use crate::SpikeTensor;

/// Per-feature firing density of a spike tensor, with helpers for building
/// the kind of distribution plots shown in Fig. 5/10 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureDensity {
    densities: Vec<f64>,
    spatiotemporal_len: usize,
}

impl FeatureDensity {
    /// Measures the per-feature densities of `tensor`.
    pub fn measure(tensor: &SpikeTensor) -> Self {
        let shape = tensor.shape();
        let counts = tensor.per_feature_counts();
        let densities = counts
            .iter()
            .map(|&c| c as f64 / shape.spatiotemporal_len() as f64)
            .collect();
        Self {
            densities,
            spatiotemporal_len: shape.spatiotemporal_len(),
        }
    }

    /// Density of feature `d`.
    pub fn density(&self, d: usize) -> f64 {
        self.densities[d]
    }

    /// All per-feature densities.
    pub fn densities(&self) -> &[f64] {
        &self.densities
    }

    /// Number of features with no spikes at all.
    pub fn silent_features(&self) -> usize {
        self.densities.iter().filter(|&&d| d == 0.0).count()
    }

    /// Fraction of features with no spikes at all.
    pub fn silent_fraction(&self) -> f64 {
        self.silent_features() as f64 / self.densities.len() as f64
    }

    /// Mean density across features.
    pub fn mean(&self) -> f64 {
        if self.densities.is_empty() {
            0.0
        } else {
            self.densities.iter().sum::<f64>() / self.densities.len() as f64
        }
    }

    /// Population standard deviation across features.
    pub fn std_dev(&self) -> f64 {
        if self.densities.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .densities
            .iter()
            .map(|d| (d - mean) * (d - mean))
            .sum::<f64>()
            / self.densities.len() as f64;
        var.sqrt()
    }

    /// Histogram of per-feature *spike counts* with `bins` equal-width bins
    /// over `[0, spatiotemporal_len]`. Returns the number of features in each
    /// bin; used to reproduce the "# of active bundles vs ratio of features"
    /// histograms of Fig. 5.
    pub fn count_histogram(&self, bins: usize) -> Vec<usize> {
        assert!(bins > 0, "histogram needs at least one bin");
        let mut histogram = vec![0usize; bins];
        for &density in &self.densities {
            let count = density * self.spatiotemporal_len as f64;
            let bin = ((count / self.spatiotemporal_len as f64) * bins as f64) as usize;
            histogram[bin.min(bins - 1)] += 1;
        }
        histogram
    }
}

/// Whole-tensor density summary: overall, per-timestep and per-token means.
#[derive(Debug, Clone, PartialEq)]
pub struct DensitySummary {
    /// Overall fraction of fired positions.
    pub overall: f64,
    /// Firing density of each timestep.
    pub per_timestep: Vec<f64>,
    /// Firing density of each token (summed across time and features).
    pub per_token: Vec<f64>,
    /// Firing density of each feature.
    pub per_feature: Vec<f64>,
}

impl DensitySummary {
    /// Measures the summary for `tensor`.
    pub fn measure(tensor: &SpikeTensor) -> Self {
        let shape = tensor.shape();
        let per_timestep = tensor
            .per_timestep_counts()
            .iter()
            .map(|&c| c as f64 / (shape.tokens * shape.features) as f64)
            .collect();
        let per_token = tensor
            .per_token_counts()
            .iter()
            .map(|&c| c as f64 / (shape.timesteps * shape.features) as f64)
            .collect();
        let per_feature = tensor
            .per_feature_counts()
            .iter()
            .map(|&c| c as f64 / shape.spatiotemporal_len() as f64)
            .collect();
        Self {
            overall: tensor.density(),
            per_timestep,
            per_token,
            per_feature,
        }
    }

    /// The largest per-feature density (the "hottest" feature).
    pub fn max_feature_density(&self) -> f64 {
        self.per_feature.iter().cloned().fold(0.0, f64::max)
    }

    /// The smallest per-feature density.
    pub fn min_feature_density(&self) -> f64 {
        self.per_feature.iter().cloned().fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpikeTensor, TensorShape};

    fn striped() -> SpikeTensor {
        // Feature 0 always fires, feature 1 never, feature 2 fires on even tokens.
        SpikeTensor::from_fn(TensorShape::new(2, 4, 3), |_, n, d| match d {
            0 => true,
            1 => false,
            _ => n % 2 == 0,
        })
    }

    #[test]
    fn feature_density_measures_columns() {
        let fd = FeatureDensity::measure(&striped());
        assert_eq!(fd.density(0), 1.0);
        assert_eq!(fd.density(1), 0.0);
        assert_eq!(fd.density(2), 0.5);
        assert_eq!(fd.silent_features(), 1);
        assert!((fd.silent_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_std_are_consistent() {
        let fd = FeatureDensity::measure(&striped());
        assert!((fd.mean() - 0.5).abs() < 1e-12);
        assert!(fd.std_dev() > 0.0);
    }

    #[test]
    fn histogram_buckets_features() {
        let fd = FeatureDensity::measure(&striped());
        let hist = fd.count_histogram(2);
        // density 0.0 -> bin 0, density 0.5 -> bin 1, density 1.0 -> bin 1 (clamped)
        assert_eq!(hist.iter().sum::<usize>(), 3);
        assert_eq!(hist[0], 1);
        assert_eq!(hist[1], 2);
    }

    #[test]
    fn summary_matches_manual_densities() {
        let summary = DensitySummary::measure(&striped());
        assert!((summary.overall - 0.5).abs() < 1e-12);
        assert_eq!(summary.per_timestep.len(), 2);
        assert_eq!(summary.per_token.len(), 4);
        assert_eq!(summary.per_feature.len(), 3);
        assert_eq!(summary.max_feature_density(), 1.0);
        assert_eq!(summary.min_feature_density(), 0.0);
        // Even tokens fire on features 0 and 2, odd tokens only on feature 0.
        assert!((summary.per_token[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((summary.per_token[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tensor_summary_is_zero() {
        let tensor = SpikeTensor::zeros(TensorShape::new(2, 2, 2));
        let summary = DensitySummary::measure(&tensor);
        assert_eq!(summary.overall, 0.0);
        assert_eq!(summary.max_feature_density(), 0.0);
    }
}
