//! Word-parallel kernels over the bit-packed spike representation.
//!
//! [`SpikeTensor`](crate::SpikeTensor) packs 64 positions per `u64` with the
//! feature axis fastest-varying, so the feature vector of one `(t, n)`
//! position — a *feature row* — is a contiguous range of `D` bits. Everything
//! in this module exploits that contiguity:
//!
//! * [`RowBits`] is a safe zero-copy view of one feature row (or any feature
//!   sub-range of it, e.g. an attention head's slice). Rows are generally
//!   *not* word-aligned (`D % 64 != 0` offsets every row differently), so the
//!   view carries a bit offset and materialises aligned *logical words* on
//!   the fly from at most two physical words each.
//! * [`RowBits::dot`] computes the binary inner product
//!   `Σ_d a[d] & b[d]` as AND + `popcount` over logical words — the exact
//!   operation the Bishop attention core performs on spiking Q/K, at ~64
//!   positions per instruction instead of one.
//! * [`RowBits::iter_set_bits`] walks only the active positions of a row via
//!   `trailing_zeros`, which is what the select-accumulate kernels
//!   (`S·V`, `spike_matmul`) want: work proportional to spikes, not to `D`.
//!
//! Every kernel here has a scalar `*_reference` twin (here or on the
//! consumer) that is kept for differential testing: the word-parallel path
//! must be bit-for-bit identical to the scalar path on every input,
//! including rows that straddle word boundaries and tensors whose total
//! length is not a multiple of 64.
//!
//! Below the word layer sits [`simd`]: runtime-dispatched AVX2 / AVX-512 /
//! NEON kernels selected once per process. Word-aligned kernels here route
//! through the active [`simd::KernelDispatch`] table when the operand is
//! long enough ([`simd::DISPATCH_MIN_WORDS`]) for the indirect call to pay
//! for itself; shorter rows keep the inlined scalar word loop.

pub mod simd;

/// A zero-copy view of a contiguous bit range of a
/// [`SpikeTensor`](crate::SpikeTensor)'s packed words — typically the
/// feature row of one `(t, n)` position, or a per-head sub-range of it.
///
/// Logical bit `i` of the view is physical bit `offset + i` of `words[0]`'s
/// bit address space. Logical *word* `i` (bits `64·i .. 64·i+64` of the
/// view) is assembled from one or two physical words and masked so that bits
/// at or beyond [`RowBits::len`] read as zero.
///
/// ```
/// use bishop_spiketensor::{SpikeTensor, TensorShape};
///
/// let t = SpikeTensor::from_fn(TensorShape::new(1, 2, 100), |_, n, d| d % (n + 2) == 0);
/// let a = t.row_words(0, 0);
/// let b = t.row_words(0, 1);
/// assert_eq!(a.len(), 100);
/// assert_eq!(a.count_ones(), t.token_count(0, 0));
/// // Binary Q·Kᵀ entry: AND + popcount across the two rows.
/// assert_eq!(a.dot(&b), a.dot_reference(&b));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RowBits<'a> {
    words: &'a [u64],
    /// Bit offset of the view's bit 0 inside `words[0]`; always `< 64`.
    offset: u32,
    /// Number of valid bits in the view.
    len: usize,
}

impl<'a> RowBits<'a> {
    /// Creates a view of `len` bits starting at absolute bit `start` of
    /// `words`.
    ///
    /// # Panics
    ///
    /// Panics if the bit range extends past `words`.
    pub fn new(words: &'a [u64], start: usize, len: usize) -> Self {
        let first = start / 64;
        let end_word = (start + len).div_ceil(64).max(first);
        assert!(
            end_word <= words.len(),
            "bit range {start}..{} out of bounds for {} words",
            start + len,
            words.len()
        );
        Self {
            words: &words[first..end_word],
            offset: (start % 64) as u32,
            len,
        }
    }

    /// Number of bits in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view covers zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of logical 64-bit words covering the view.
    pub fn word_count(&self) -> usize {
        self.len.div_ceil(64)
    }

    /// Logical word `i` of the view: bits `64·i .. 64·i+64`, with bits at or
    /// beyond [`RowBits::len`] masked to zero.
    ///
    /// # Panics
    ///
    /// Panics if `i >= word_count()`.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        let bit = i * 64;
        assert!(bit < self.len, "logical word {i} out of range");
        let value = if self.offset == 0 {
            self.words[i]
        } else {
            let lo = self.words[i] >> self.offset;
            // The high part comes from the next physical word when the view
            // extends into it; a short final word has no successor.
            let hi = self.words.get(i + 1).copied().unwrap_or(0);
            lo | (hi << (64 - self.offset))
        };
        let remaining = self.len - bit;
        if remaining >= 64 {
            value
        } else {
            value & ((1u64 << remaining) - 1)
        }
    }

    /// Reads logical bit `i` of the view.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range for row of {}", self.len);
        let bit = self.offset as usize + i;
        (self.words[bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// Restricts the view to the bit range `start..end` (e.g. one attention
    /// head's features out of a full feature row).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len()`.
    pub fn slice(&self, start: usize, end: usize) -> RowBits<'a> {
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of range for row of {}",
            self.len
        );
        RowBits::new(self.words, self.offset as usize + start, end - start)
    }

    /// The view's packed physical words, if the view is exactly
    /// word-aligned (starts on a word boundary and covers a whole number
    /// of words). Lets batch kernels that pair many rows against each
    /// other (attention scores) run straight over the raw words instead
    /// of paying the logical-word assembly per pair; `None` means the
    /// caller must go through [`RowBits::word`].
    #[inline]
    pub fn aligned_words(&self) -> Option<&'a [u64]> {
        (self.offset == 0 && self.len.is_multiple_of(64)).then(|| &self.words[..self.len / 64])
    }

    /// Number of set bits in the view, counted word-wise. Long aligned
    /// views take the SIMD popcount over whole physical words.
    pub fn count_ones(&self) -> usize {
        if self.offset == 0 && self.len / 64 >= simd::DISPATCH_MIN_WORDS {
            let full = self.len / 64;
            let mut acc = simd::active().popcount(&self.words[..full]) as usize;
            if !self.len.is_multiple_of(64) {
                acc += self.word(full).count_ones() as usize;
            }
            return acc;
        }
        (0..self.word_count())
            .map(|i| self.word(i).count_ones() as usize)
            .sum()
    }

    /// Binary inner product with `other`: `Σ_i self[i] & other[i]`, computed
    /// as AND + popcount over logical words. This is the integer attention
    /// score a spiking Q row produces against a K row (Eq. 4 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the views have different lengths.
    #[inline]
    pub fn dot(&self, other: &RowBits<'_>) -> u32 {
        assert_eq!(
            self.len, other.len,
            "dot requires equal-length rows ({} vs {})",
            self.len, other.len
        );
        if self.offset == 0 && other.offset == 0 {
            // Aligned fast path: AND whole physical words; only a final
            // partial word (which may hold the next row's bits) needs the
            // masked logical read. Long rows go through the SIMD dispatch
            // table; short ones (a D=128 row is two words) stay inline.
            let full = self.len / 64;
            let mut acc: u32 = if full >= simd::DISPATCH_MIN_WORDS {
                simd::active().and_popcount(&self.words[..full], &other.words[..full]) as u32
            } else {
                self.words[..full]
                    .iter()
                    .zip(&other.words[..full])
                    .map(|(a, b)| (a & b).count_ones())
                    .sum()
            };
            if !self.len.is_multiple_of(64) {
                acc += (self.word(full) & other.word(full)).count_ones();
            }
            return acc;
        }
        let mut acc = 0u32;
        for i in 0..self.word_count() {
            acc += (self.word(i) & other.word(i)).count_ones();
        }
        acc
    }

    /// Scalar reference implementation of [`RowBits::dot`], kept for
    /// differential testing of the word-parallel kernel.
    pub fn dot_reference(&self, other: &RowBits<'_>) -> u32 {
        assert_eq!(
            self.len, other.len,
            "dot requires equal-length rows ({} vs {})",
            self.len, other.len
        );
        (0..self.len)
            .filter(|&i| self.get(i) && other.get(i))
            .count() as u32
    }

    /// Iterates the indices of set bits in increasing order, driven by
    /// `trailing_zeros` so the cost is proportional to the number of spikes.
    pub fn iter_set_bits(&self) -> SetBits<'a> {
        SetBits {
            row: *self,
            next_word: 0,
            current: 0,
            base: 0,
        }
    }
}

/// Iterator over the set-bit positions of a [`RowBits`] view, in increasing
/// order. Created by [`RowBits::iter_set_bits`].
#[derive(Debug, Clone)]
pub struct SetBits<'a> {
    row: RowBits<'a>,
    /// Next logical word to load.
    next_word: usize,
    /// Remaining bits of the word currently being drained.
    current: u64,
    /// Bit index of the current word's bit 0.
    base: usize,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            if self.next_word >= self.row.word_count() {
                return None;
            }
            self.base = self.next_word * 64;
            self.current = self.row.word(self.next_word);
            self.next_word += 1;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.base + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_from(pattern: &[usize], words: usize) -> Vec<u64> {
        let mut v = vec![0u64; words];
        for &b in pattern {
            v[b / 64] |= 1 << (b % 64);
        }
        v
    }

    #[test]
    fn aligned_view_reads_words_directly() {
        let words = bits_from(&[0, 5, 63, 64, 100], 2);
        let row = RowBits::new(&words, 0, 128);
        assert_eq!(row.word_count(), 2);
        assert_eq!(row.word(0), words[0]);
        assert_eq!(row.word(1), words[1]);
        assert_eq!(row.count_ones(), 5);
    }

    #[test]
    fn unaligned_view_straddles_physical_words() {
        let words = bits_from(&[10, 63, 64, 70], 2);
        // View of 20 bits starting at bit 60: covers physical bits 60..80.
        let row = RowBits::new(&words, 60, 20);
        assert_eq!(row.len(), 20);
        assert!(row.get(3)); // physical bit 63
        assert!(row.get(4)); // physical bit 64
        assert!(row.get(10)); // physical bit 70
        assert_eq!(row.count_ones(), 3);
        assert_eq!(row.iter_set_bits().collect::<Vec<_>>(), vec![3, 4, 10]);
    }

    #[test]
    fn tail_bits_read_as_zero() {
        let words = vec![u64::MAX; 2];
        let row = RowBits::new(&words, 3, 70);
        assert_eq!(row.count_ones(), 70);
        assert_eq!(row.word(1).count_ones(), 6);
    }

    #[test]
    fn slice_matches_manual_offsets() {
        let words = bits_from(&[0, 7, 8, 9, 127], 2);
        let row = RowBits::new(&words, 0, 128);
        let sub = row.slice(7, 10);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.iter_set_bits().collect::<Vec<_>>(), vec![0, 1, 2]);
        let tail = row.slice(100, 128);
        assert_eq!(tail.count_ones(), 1);
        assert!(tail.get(27));
    }

    #[test]
    fn dot_matches_reference_across_offsets() {
        let a_words = bits_from(&[1, 3, 64, 65, 90, 120], 3);
        let b_words = bits_from(&[1, 64, 90, 91, 119], 3);
        for start in [0usize, 1, 37, 63, 64] {
            for len in [0usize, 1, 5, 64, 65, 100] {
                let a = RowBits::new(&a_words, start, len);
                let b = RowBits::new(&b_words, start, len);
                assert_eq!(a.dot(&b), a.dot_reference(&b), "start={start} len={len}");
            }
        }
    }

    #[test]
    fn empty_view_is_well_behaved() {
        let words = bits_from(&[0], 1);
        let row = RowBits::new(&words, 5, 0);
        assert!(row.is_empty());
        assert_eq!(row.word_count(), 0);
        assert_eq!(row.count_ones(), 0);
        assert_eq!(row.iter_set_bits().count(), 0);
        assert_eq!(row.dot(&row), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_past_storage_is_rejected() {
        let words = vec![0u64; 1];
        RowBits::new(&words, 60, 10);
    }

    #[test]
    #[should_panic(expected = "equal-length rows")]
    fn dot_rejects_mismatched_lengths() {
        let words = vec![0u64; 2];
        let a = RowBits::new(&words, 0, 10);
        let b = RowBits::new(&words, 0, 11);
        a.dot(&b);
    }
}
