//! Bit-packed binary spike tensor.

use crate::{ShapeError, TensorShape};

/// A binary spiking activation tensor of shape `T × N × D`, bit-packed 64
/// positions per `u64` word.
///
/// The tensor stores the output of an LIF neuron layer: position `(t, n, d)`
/// is `true` when token `n` fired on feature `d` at timestep `t`. All the
/// Token-Time-Bundle machinery (`bishop-bundle`) as well as the accelerator
/// simulators consume this type.
///
/// ```
/// use bishop_spiketensor::{SpikeTensor, TensorShape};
///
/// let mut q = SpikeTensor::zeros(TensorShape::new(2, 4, 8));
/// q.set(1, 2, 3, true);
/// q.set(0, 0, 0, true);
/// assert_eq!(q.count_ones(), 2);
/// assert!((q.density() - 2.0 / 64.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpikeTensor {
    shape: TensorShape,
    words: Vec<u64>,
}

impl SpikeTensor {
    /// Creates an all-zero spike tensor of the given shape.
    pub fn zeros(shape: TensorShape) -> Self {
        let words = vec![0u64; shape.len().div_ceil(64)];
        Self { shape, words }
    }

    /// Creates an all-one spike tensor of the given shape (every position
    /// fired). Mostly useful for worst-case workload modelling and tests.
    pub fn ones(shape: TensorShape) -> Self {
        let mut tensor = Self::zeros(shape);
        for word in &mut tensor.words {
            *word = u64::MAX;
        }
        tensor.clear_tail();
        tensor
    }

    /// Builds a tensor by evaluating `f` on every coordinate.
    ///
    /// ```
    /// use bishop_spiketensor::{SpikeTensor, TensorShape};
    /// let t = SpikeTensor::from_fn(TensorShape::new(2, 2, 2), |t, n, d| (t + n + d) % 2 == 0);
    /// assert_eq!(t.count_ones(), 4);
    /// ```
    pub fn from_fn<F>(shape: TensorShape, mut f: F) -> Self
    where
        F: FnMut(usize, usize, usize) -> bool,
    {
        let mut tensor = Self::zeros(shape);
        for (t, n, d) in shape.iter_coordinates() {
            if f(t, n, d) {
                tensor.set(t, n, d, true);
            }
        }
        tensor
    }

    /// The tensor's shape.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Reads the spike at `(t, n, d)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, t: usize, n: usize, d: usize) -> bool {
        let idx = self.shape.linear_index(t, n, d);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Writes the spike at `(t, n, d)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, t: usize, n: usize, d: usize, value: bool) {
        let idx = self.shape.linear_index(t, n, d);
        let word = &mut self.words[idx / 64];
        if value {
            *word |= 1 << (idx % 64);
        } else {
            *word &= !(1 << (idx % 64));
        }
    }

    /// Number of active spikes in the whole tensor.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of positions that fired, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / self.shape.len() as f64
    }

    /// Fraction of positions that did *not* fire, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Number of active spikes on feature column `d` across all timesteps and
    /// tokens.
    pub fn feature_count(&self, d: usize) -> usize {
        assert!(d < self.shape.features, "feature {d} out of bounds");
        let mut count = 0;
        for t in 0..self.shape.timesteps {
            for n in 0..self.shape.tokens {
                if self.get(t, n, d) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Firing density of feature column `d`.
    pub fn feature_density(&self, d: usize) -> f64 {
        self.feature_count(d) as f64 / self.shape.spatiotemporal_len() as f64
    }

    /// Number of active spikes for token `n` at timestep `t` across all
    /// features (the length of the token's active feature vector).
    pub fn token_count(&self, t: usize, n: usize) -> usize {
        (0..self.shape.features)
            .filter(|&d| self.get(t, n, d))
            .count()
    }

    /// Counts active spikes inside the axis-aligned region
    /// `[t0, t1) × [n0, n1)` of feature `d`.
    ///
    /// This is the `L0` norm used for Token-Time-Bundle activity tags
    /// (Eq. 9 of the paper). Ranges are clamped to the tensor bounds.
    pub fn count_in_region(
        &self,
        t_range: (usize, usize),
        n_range: (usize, usize),
        d: usize,
    ) -> usize {
        let (t0, t1) = (t_range.0, t_range.1.min(self.shape.timesteps));
        let (n0, n1) = (n_range.0, n_range.1.min(self.shape.tokens));
        let mut count = 0;
        for t in t0..t1 {
            for n in n0..n1 {
                if self.get(t, n, d) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Iterates over the coordinates of all active spikes in layout order.
    pub fn iter_active(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let shape = self.shape;
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut bits = word;
            let mut out = Vec::new();
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                let linear = wi * 64 + bit;
                if linear < shape.len() {
                    out.push(shape.coordinates(linear));
                }
                bits &= bits - 1;
            }
            out
        })
    }

    /// Elementwise logical AND of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn and(&self, other: &SpikeTensor) -> Result<SpikeTensor, ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new("elementwise and", self.shape, other.shape));
        }
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        Ok(SpikeTensor {
            shape: self.shape,
            words,
        })
    }

    /// Elementwise logical OR of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn or(&self, other: &SpikeTensor) -> Result<SpikeTensor, ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new("elementwise or", self.shape, other.shape));
        }
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        Ok(SpikeTensor {
            shape: self.shape,
            words,
        })
    }

    /// Returns a copy restricted to the given feature columns (all other
    /// columns cleared). Used by the stratifier to split a workload into its
    /// dense-routed and sparse-routed halves while keeping the original
    /// feature indexing.
    pub fn masked_by_features(&self, features: &[usize]) -> SpikeTensor {
        let mut keep = vec![false; self.shape.features];
        for &d in features {
            assert!(d < self.shape.features, "feature {d} out of bounds");
            keep[d] = true;
        }
        SpikeTensor::from_fn(self.shape, |t, n, d| keep[d] && self.get(t, n, d))
    }

    /// Extracts the feature sub-tensor for attention head `head` out of
    /// `heads` equally sized heads. Feature `d` of the result corresponds to
    /// feature `head * (D / heads) + d` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `D` or `head >= heads`.
    pub fn head_slice(&self, head: usize, heads: usize) -> SpikeTensor {
        let head_shape = self.shape.per_head(heads);
        assert!(head < heads, "head index {head} out of range 0..{heads}");
        let offset = head * head_shape.features;
        SpikeTensor::from_fn(head_shape, |t, n, d| self.get(t, n, offset + d))
    }

    /// Per-timestep view: number of spikes at each timestep.
    pub fn per_timestep_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shape.timesteps];
        for (t, _, _) in self.iter_active() {
            counts[t] += 1;
        }
        counts
    }

    /// Per-token firing count of the token's features summed over time; a
    /// proxy for "how busy" a token is, used by ECP statistics.
    pub fn per_token_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shape.tokens];
        for (_, n, _) in self.iter_active() {
            counts[n] += 1;
        }
        counts
    }

    /// Per-feature firing counts across all timesteps and tokens.
    pub fn per_feature_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shape.features];
        for (_, _, d) in self.iter_active() {
            counts[d] += 1;
        }
        counts
    }

    /// Size in bytes of the packed representation (what the accelerator would
    /// move for this tensor when stored as a bitmap).
    pub fn packed_bytes(&self) -> usize {
        self.shape.len().div_ceil(8)
    }

    /// Clears bits beyond the logical length in the final word so that
    /// `count_ones` stays exact after bulk word operations.
    fn clear_tail(&mut self) {
        let valid = self.shape.len();
        let last_bits = valid % 64;
        if last_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << last_bits) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SpikeTensor {
        let mut t = SpikeTensor::zeros(TensorShape::new(2, 3, 4));
        t.set(0, 0, 0, true);
        t.set(0, 1, 2, true);
        t.set(1, 2, 3, true);
        t
    }

    #[test]
    fn zeros_has_no_spikes() {
        let t = SpikeTensor::zeros(TensorShape::new(3, 5, 7));
        assert_eq!(t.count_ones(), 0);
        assert_eq!(t.density(), 0.0);
        assert_eq!(t.sparsity(), 1.0);
    }

    #[test]
    fn ones_covers_every_position_exactly() {
        let shape = TensorShape::new(3, 5, 7);
        let t = SpikeTensor::ones(shape);
        assert_eq!(t.count_ones(), shape.len());
        assert_eq!(t.density(), 1.0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut t = SpikeTensor::zeros(TensorShape::new(4, 4, 4));
        t.set(3, 3, 3, true);
        assert!(t.get(3, 3, 3));
        t.set(3, 3, 3, false);
        assert!(!t.get(3, 3, 3));
    }

    #[test]
    fn count_in_region_matches_manual_count() {
        let t = small();
        assert_eq!(t.count_in_region((0, 1), (0, 2), 0), 1);
        assert_eq!(t.count_in_region((0, 1), (0, 2), 2), 1);
        assert_eq!(t.count_in_region((0, 2), (0, 3), 3), 1);
        assert_eq!(t.count_in_region((0, 2), (0, 3), 1), 0);
    }

    #[test]
    fn count_in_region_clamps_ranges() {
        let t = small();
        assert_eq!(t.count_in_region((0, 100), (0, 100), 3), 1);
    }

    #[test]
    fn iter_active_yields_exactly_set_positions() {
        let t = small();
        let active: Vec<_> = t.iter_active().collect();
        assert_eq!(active, vec![(0, 0, 0), (0, 1, 2), (1, 2, 3)]);
    }

    #[test]
    fn feature_and_token_counts() {
        let t = small();
        assert_eq!(t.feature_count(0), 1);
        assert_eq!(t.feature_count(1), 0);
        assert_eq!(t.token_count(0, 1), 1);
        assert_eq!(t.token_count(1, 2), 1);
        assert_eq!(t.per_feature_counts(), vec![1, 0, 1, 1]);
        assert_eq!(t.per_token_counts(), vec![1, 1, 1]);
        assert_eq!(t.per_timestep_counts(), vec![2, 1]);
    }

    #[test]
    fn and_or_respect_shapes() {
        let a = small();
        let mut b = SpikeTensor::zeros(a.shape());
        b.set(0, 0, 0, true);
        b.set(1, 1, 1, true);
        let and = a.and(&b).unwrap();
        assert_eq!(and.count_ones(), 1);
        assert!(and.get(0, 0, 0));
        let or = a.or(&b).unwrap();
        assert_eq!(or.count_ones(), 4);

        let c = SpikeTensor::zeros(TensorShape::new(1, 1, 1));
        assert!(a.and(&c).is_err());
        assert!(a.or(&c).is_err());
    }

    #[test]
    fn masked_by_features_keeps_only_selected_columns() {
        let t = small();
        let masked = t.masked_by_features(&[2, 3]);
        assert_eq!(masked.count_ones(), 2);
        assert!(!masked.get(0, 0, 0));
        assert!(masked.get(0, 1, 2));
    }

    #[test]
    fn head_slice_extracts_contiguous_features() {
        let shape = TensorShape::new(1, 2, 8);
        let t = SpikeTensor::from_fn(shape, |_, _, d| d >= 4);
        let head0 = t.head_slice(0, 2);
        let head1 = t.head_slice(1, 2);
        assert_eq!(head0.count_ones(), 0);
        assert_eq!(head1.count_ones(), 2 * 4);
    }

    #[test]
    fn packed_bytes_rounds_up() {
        let t = SpikeTensor::zeros(TensorShape::new(1, 1, 9));
        assert_eq!(t.packed_bytes(), 2);
    }

    #[test]
    fn from_fn_matches_predicate() {
        let shape = TensorShape::new(2, 2, 2);
        let t = SpikeTensor::from_fn(shape, |t, n, d| t == 1 && n == 0 && d == 1);
        assert_eq!(t.count_ones(), 1);
        assert!(t.get(1, 0, 1));
    }
}
