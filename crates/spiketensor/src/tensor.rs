//! Bit-packed binary spike tensor.

use crate::words::{simd, RowBits};
use crate::{ShapeError, TensorShape};

/// A binary spiking activation tensor of shape `T × N × D`, bit-packed 64
/// positions per `u64` word.
///
/// The tensor stores the output of an LIF neuron layer: position `(t, n, d)`
/// is `true` when token `n` fired on feature `d` at timestep `t`. All the
/// Token-Time-Bundle machinery (`bishop-bundle`) as well as the accelerator
/// simulators consume this type.
///
/// # Bit layout guarantee
///
/// The packing is row-major with the **feature axis fastest-varying**: bit
/// `(t, n, d)` lives at linear bit index `((t·N) + n)·D + d`, packed
/// little-endian into `u64` words (bit `i` is bit `i % 64` of word
/// `i / 64`). Two consequences every consumer may rely on:
///
/// * the feature vector of one `(t, n)` position — a *feature row* — is a
///   contiguous range of `D` bits, exposed zero-copy via
///   [`SpikeTensor::row_words`] and the word-parallel kernels of
///   [`crate::words`];
/// * bits at linear indices `>= len()` in the final word are always zero
///   (the *tail invariant*), so bulk word operations (`popcount`, AND, OR)
///   over [`SpikeTensor::words`] are exact without masking.
///
/// Rows are **not** padded to word boundaries: when `D % 64 != 0`,
/// consecutive rows straddle words at varying bit offsets, which
/// [`RowBits`] handles by assembling aligned logical words on the fly.
///
/// ```
/// use bishop_spiketensor::{SpikeTensor, TensorShape};
///
/// let mut q = SpikeTensor::zeros(TensorShape::new(2, 4, 8));
/// q.set(1, 2, 3, true);
/// q.set(0, 0, 0, true);
/// assert_eq!(q.count_ones(), 2);
/// assert!((q.density() - 2.0 / 64.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpikeTensor {
    shape: TensorShape,
    words: Vec<u64>,
}

impl SpikeTensor {
    /// Creates an all-zero spike tensor of the given shape.
    pub fn zeros(shape: TensorShape) -> Self {
        let words = vec![0u64; shape.len().div_ceil(64)];
        Self { shape, words }
    }

    /// Creates an all-one spike tensor of the given shape (every position
    /// fired). Mostly useful for worst-case workload modelling and tests.
    pub fn ones(shape: TensorShape) -> Self {
        let mut tensor = Self::zeros(shape);
        for word in &mut tensor.words {
            *word = u64::MAX;
        }
        tensor.clear_tail();
        tensor.debug_assert_tail_invariant();
        tensor
    }

    /// Builds a tensor by evaluating `f` on every coordinate.
    ///
    /// ```
    /// use bishop_spiketensor::{SpikeTensor, TensorShape};
    /// let t = SpikeTensor::from_fn(TensorShape::new(2, 2, 2), |t, n, d| (t + n + d) % 2 == 0);
    /// assert_eq!(t.count_ones(), 4);
    /// ```
    pub fn from_fn<F>(shape: TensorShape, mut f: F) -> Self
    where
        F: FnMut(usize, usize, usize) -> bool,
    {
        // Assemble each word locally instead of calling `set` per coordinate:
        // the coordinates are visited in layout order, so bits stream into
        // one register-resident word at a time (no per-bit index math or
        // read-modify-write of the words vector).
        let mut words = Vec::with_capacity(shape.len().div_ceil(64));
        let mut word = 0u64;
        let mut filled = 0u32;
        for t in 0..shape.timesteps {
            for n in 0..shape.tokens {
                for d in 0..shape.features {
                    if f(t, n, d) {
                        word |= 1 << filled;
                    }
                    filled += 1;
                    if filled == 64 {
                        words.push(word);
                        word = 0;
                        filled = 0;
                    }
                }
            }
        }
        if filled > 0 {
            words.push(word);
        }
        let tensor = Self { shape, words };
        tensor.debug_assert_tail_invariant();
        tensor
    }

    /// The tensor's shape.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Reads the spike at `(t, n, d)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, t: usize, n: usize, d: usize) -> bool {
        let idx = self.shape.linear_index(t, n, d);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Writes the spike at `(t, n, d)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, t: usize, n: usize, d: usize, value: bool) {
        let idx = self.shape.linear_index(t, n, d);
        let word = &mut self.words[idx / 64];
        if value {
            *word |= 1 << (idx % 64);
        } else {
            *word &= !(1 << (idx % 64));
        }
        self.debug_assert_tail_invariant();
    }

    /// The packed word storage. Bits beyond `shape().len()` in the final
    /// word are guaranteed zero (the tail invariant), so bulk word
    /// operations over this slice are exact.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Zero-copy word view of the feature row of `(t, n)`: the `D`
    /// contiguous bits holding that position's feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `n` is out of bounds.
    #[inline]
    pub fn row_words(&self, t: usize, n: usize) -> RowBits<'_> {
        assert!(
            t < self.shape.timesteps && n < self.shape.tokens,
            "row ({t}, {n}) out of bounds for shape {}",
            self.shape
        );
        let start = (t * self.shape.tokens + n) * self.shape.features;
        RowBits::new(&self.words, start, self.shape.features)
    }

    /// Zero-copy view of features `d_start..d_end` of the feature row of
    /// `(t, n)` — e.g. one attention head's sub-row. Replaces the copying
    /// [`SpikeTensor::head_slice`] in hot paths.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates or feature range are out of bounds.
    #[inline]
    pub fn row_feature_slice(
        &self,
        t: usize,
        n: usize,
        d_start: usize,
        d_end: usize,
    ) -> RowBits<'_> {
        self.row_words(t, n).slice(d_start, d_end)
    }

    /// Number of active spikes in the whole tensor. Runs on the active SIMD
    /// popcount tier — exact without masking thanks to the tail invariant.
    pub fn count_ones(&self) -> usize {
        simd::active().popcount(&self.words) as usize
    }

    /// Fraction of positions that fired, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / self.shape.len() as f64
    }

    /// Fraction of positions that did *not* fire, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Number of active spikes on feature column `d` across all timesteps and
    /// tokens.
    pub fn feature_count(&self, d: usize) -> usize {
        assert!(d < self.shape.features, "feature {d} out of bounds");
        let mut count = 0;
        for t in 0..self.shape.timesteps {
            for n in 0..self.shape.tokens {
                if self.get(t, n, d) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Firing density of feature column `d`.
    pub fn feature_density(&self, d: usize) -> f64 {
        self.feature_count(d) as f64 / self.shape.spatiotemporal_len() as f64
    }

    /// Number of active spikes for token `n` at timestep `t` across all
    /// features (the length of the token's active feature vector).
    pub fn token_count(&self, t: usize, n: usize) -> usize {
        self.row_words(t, n).count_ones()
    }

    /// Counts active spikes inside the axis-aligned region
    /// `[t0, t1) × [n0, n1)` of feature `d`.
    ///
    /// This is the `L0` norm used for Token-Time-Bundle activity tags
    /// (Eq. 9 of the paper). Ranges are clamped to the tensor bounds.
    pub fn count_in_region(
        &self,
        t_range: (usize, usize),
        n_range: (usize, usize),
        d: usize,
    ) -> usize {
        let (t0, t1) = (t_range.0, t_range.1.min(self.shape.timesteps));
        let (n0, n1) = (n_range.0, n_range.1.min(self.shape.tokens));
        let mut count = 0;
        for t in t0..t1 {
            for n in n0..n1 {
                if self.get(t, n, d) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Counts active spikes inside the three-dimensional region
    /// `[t0, t1) × [n0, n1) × [d0, d1)`, word-wise along the feature axis
    /// (partial tail words of each row slice are masked exactly). Ranges are
    /// clamped to the tensor bounds.
    ///
    /// This is the bundle-region popcount underneath Token-Time-Bundle
    /// activity accounting: the tag of bundle `(bt, bn, d)` is this count
    /// with a single-feature `d` range, and a bundle row's total activity is
    /// this count over the full feature range.
    pub fn count_in_region_features(
        &self,
        t_range: (usize, usize),
        n_range: (usize, usize),
        d_range: (usize, usize),
    ) -> usize {
        let (t0, t1) = (t_range.0, t_range.1.min(self.shape.timesteps));
        let (n0, n1) = (n_range.0, n_range.1.min(self.shape.tokens));
        let (d0, d1) = (d_range.0, d_range.1.min(self.shape.features));
        if t0 >= t1 || n0 >= n1 || d0 >= d1 {
            return 0;
        }
        let mut count = 0;
        for t in t0..t1 {
            for n in n0..n1 {
                count += self.row_feature_slice(t, n, d0, d1).count_ones();
            }
        }
        count
    }

    /// Scalar reference implementation of
    /// [`SpikeTensor::count_in_region_features`], kept for differential
    /// testing of the word-parallel region popcount.
    pub fn count_in_region_features_reference(
        &self,
        t_range: (usize, usize),
        n_range: (usize, usize),
        d_range: (usize, usize),
    ) -> usize {
        let (t0, t1) = (t_range.0, t_range.1.min(self.shape.timesteps));
        let (n0, n1) = (n_range.0, n_range.1.min(self.shape.tokens));
        let (d0, d1) = (d_range.0, d_range.1.min(self.shape.features));
        let mut count = 0;
        for t in t0..t1 {
            for n in n0..n1 {
                for d in d0..d1 {
                    if self.get(t, n, d) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Iterates over the coordinates of all active spikes in layout order.
    ///
    /// Driven by `trailing_zeros` over the packed words; allocation-free and
    /// proportional to the number of spikes (plus one load per word).
    pub fn iter_active(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        ActiveBits {
            shape: self.shape,
            words: &self.words,
            next_word: 0,
            current: 0,
            base: 0,
        }
    }

    /// Elementwise logical AND of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn and(&self, other: &SpikeTensor) -> Result<SpikeTensor, ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new("elementwise and", self.shape, other.shape));
        }
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        let result = SpikeTensor {
            shape: self.shape,
            words,
        };
        result.debug_assert_tail_invariant();
        Ok(result)
    }

    /// Elementwise logical OR of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn or(&self, other: &SpikeTensor) -> Result<SpikeTensor, ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new("elementwise or", self.shape, other.shape));
        }
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        let result = SpikeTensor {
            shape: self.shape,
            words,
        };
        result.debug_assert_tail_invariant();
        Ok(result)
    }

    /// Returns a copy restricted to the given feature columns (all other
    /// columns cleared). Used by the stratifier to split a workload into its
    /// dense-routed and sparse-routed halves while keeping the original
    /// feature indexing.
    pub fn masked_by_features(&self, features: &[usize]) -> SpikeTensor {
        // Build the feature-keep mask once as a logical row of D bits, then
        // AND every feature row against it word-wise.
        let row_words = self.shape.features.div_ceil(64);
        let mut mask = vec![0u64; row_words];
        for &d in features {
            assert!(d < self.shape.features, "feature {d} out of bounds");
            mask[d / 64] |= 1 << (d % 64);
        }
        let mut result = SpikeTensor::zeros(self.shape);
        for t in 0..self.shape.timesteps {
            for n in 0..self.shape.tokens {
                let row = self.row_words(t, n);
                let start = (t * self.shape.tokens + n) * self.shape.features;
                deposit_row(&mut result.words, start, self.shape.features, |i| {
                    row.word(i) & mask[i]
                });
            }
        }
        result.debug_assert_tail_invariant();
        result
    }

    /// Extracts the feature sub-tensor for attention head `head` out of
    /// `heads` equally sized heads. Feature `d` of the result corresponds to
    /// feature `head * (D / heads) + d` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `D` or `head >= heads`.
    /// For hot paths prefer [`SpikeTensor::row_feature_slice`], which views
    /// the same head sub-rows zero-copy instead of materialising them.
    pub fn head_slice(&self, head: usize, heads: usize) -> SpikeTensor {
        let head_shape = self.shape.per_head(heads);
        assert!(head < heads, "head index {head} out of range 0..{heads}");
        let offset = head * head_shape.features;
        let mut result = SpikeTensor::zeros(head_shape);
        for t in 0..head_shape.timesteps {
            for n in 0..head_shape.tokens {
                let sub = self.row_feature_slice(t, n, offset, offset + head_shape.features);
                let start = (t * head_shape.tokens + n) * head_shape.features;
                deposit_row(&mut result.words, start, head_shape.features, |i| {
                    sub.word(i)
                });
            }
        }
        result.debug_assert_tail_invariant();
        result
    }

    /// Per-timestep view: number of spikes at each timestep.
    pub fn per_timestep_counts(&self) -> Vec<usize> {
        (0..self.shape.timesteps)
            .map(|t| {
                (0..self.shape.tokens)
                    .map(|n| self.row_words(t, n).count_ones())
                    .sum()
            })
            .collect()
    }

    /// Per-token firing count of the token's features summed over time; a
    /// proxy for "how busy" a token is, used by ECP statistics.
    pub fn per_token_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shape.tokens];
        for t in 0..self.shape.timesteps {
            for (n, count) in counts.iter_mut().enumerate() {
                *count += self.row_words(t, n).count_ones();
            }
        }
        counts
    }

    /// Per-feature firing counts across all timesteps and tokens.
    pub fn per_feature_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shape.features];
        for t in 0..self.shape.timesteps {
            for n in 0..self.shape.tokens {
                for d in self.row_words(t, n).iter_set_bits() {
                    counts[d] += 1;
                }
            }
        }
        counts
    }

    /// Clears the entire feature row of `(t, n)` word-wise (all `D` bits at
    /// once). Used by the pruning paths that drop whole bundle rows.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `n` is out of bounds.
    pub fn clear_row(&mut self, t: usize, n: usize) {
        assert!(
            t < self.shape.timesteps && n < self.shape.tokens,
            "row ({t}, {n}) out of bounds for shape {}",
            self.shape
        );
        let start = (t * self.shape.tokens + n) * self.shape.features;
        let end = start + self.shape.features;
        for w in start / 64..end.div_ceil(64) {
            let lo = (w * 64).max(start) - w * 64;
            let hi = ((w + 1) * 64).min(end) - w * 64;
            // Mask covering row bits [lo, hi) of this word.
            let mask = if hi - lo == 64 {
                u64::MAX
            } else {
                ((1u64 << (hi - lo)) - 1) << lo
            };
            self.words[w] &= !mask;
        }
        self.debug_assert_tail_invariant();
    }

    /// Overwrites the feature row of `(t, n)` from logical 64-bit source
    /// words: bit `d` of the row becomes bit `d % 64` of `source(d / 64)`.
    /// Source bits at or beyond `D` in the final logical word are ignored,
    /// so the tail invariant is preserved unconditionally.
    ///
    /// This is the word-wise dual of [`SpikeTensor::row_words`]; the pruning
    /// and masking paths use it to write a whole transformed row per
    /// iteration instead of one bit at a time.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `n` is out of bounds.
    pub fn set_row_words(&mut self, t: usize, n: usize, mut source: impl FnMut(usize) -> u64) {
        self.clear_row(t, n);
        let features = self.shape.features;
        let start = (t * self.shape.tokens + n) * features;
        deposit_row(&mut self.words, start, features, |i| {
            let value = source(i);
            let remaining = features - i * 64;
            if remaining >= 64 {
                value
            } else {
                value & ((1u64 << remaining) - 1)
            }
        });
        self.debug_assert_tail_invariant();
    }

    /// Size in bytes of the packed representation (what the accelerator would
    /// move for this tensor when stored as a bitmap).
    pub fn packed_bytes(&self) -> usize {
        self.shape.len().div_ceil(8)
    }

    /// Clears bits beyond the logical length in the final word so that
    /// `count_ones` stays exact after bulk word operations.
    fn clear_tail(&mut self) {
        let valid = self.shape.len();
        let last_bits = valid % 64;
        if last_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << last_bits) - 1;
            }
        }
    }

    /// Debug check of the documented tail invariant: bits at linear indices
    /// `>= len()` in the final word are zero. Every mutation site asserts
    /// this so SIMD tail-handling bugs fail loudly in debug builds instead
    /// of silently corrupting bulk word kernels.
    #[inline]
    fn debug_assert_tail_invariant(&self) {
        debug_assert!(
            self.tail_is_zero(),
            "tail invariant violated: bits beyond len() set in final word of shape {}",
            self.shape
        );
    }

    /// Whether the tail invariant currently holds.
    fn tail_is_zero(&self) -> bool {
        let last_bits = self.shape.len() % 64;
        if last_bits == 0 {
            return true;
        }
        match self.words.last() {
            Some(&last) => last & !((1u64 << last_bits) - 1) == 0,
            None => true,
        }
    }
}

/// Writes a row of `len` bits into `words` starting at absolute bit `start`,
/// taking logical 64-bit source words from `source(i)`. The target bits must
/// currently be zero (rows are written at most once), so an OR deposit
/// suffices; source words must have bits `>= len - 64·i` cleared, which
/// [`RowBits::word`] guarantees.
fn deposit_row(words: &mut [u64], start: usize, len: usize, mut source: impl FnMut(usize) -> u64) {
    let offset = (start % 64) as u32;
    let first = start / 64;
    for i in 0..len.div_ceil(64) {
        let value = source(i);
        let w = first + i;
        words[w] |= value << offset;
        let bits_here = 64.min(len - i * 64);
        if offset > 0 && offset as usize + bits_here > 64 {
            words[w + 1] |= value >> (64 - offset);
        }
    }
}

/// Allocation-free iterator over active spike coordinates, in layout order.
struct ActiveBits<'a> {
    shape: TensorShape,
    words: &'a [u64],
    next_word: usize,
    current: u64,
    base: usize,
}

impl Iterator for ActiveBits<'_> {
    type Item = (usize, usize, usize);

    #[inline]
    fn next(&mut self) -> Option<(usize, usize, usize)> {
        while self.current == 0 {
            if self.next_word >= self.words.len() {
                return None;
            }
            self.base = self.next_word * 64;
            self.current = self.words[self.next_word];
            self.next_word += 1;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        let linear = self.base + bit;
        // The tail invariant guarantees no bits at or beyond len().
        debug_assert!(linear < self.shape.len());
        Some(self.shape.coordinates(linear))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SpikeTensor {
        let mut t = SpikeTensor::zeros(TensorShape::new(2, 3, 4));
        t.set(0, 0, 0, true);
        t.set(0, 1, 2, true);
        t.set(1, 2, 3, true);
        t
    }

    #[test]
    fn zeros_has_no_spikes() {
        let t = SpikeTensor::zeros(TensorShape::new(3, 5, 7));
        assert_eq!(t.count_ones(), 0);
        assert_eq!(t.density(), 0.0);
        assert_eq!(t.sparsity(), 1.0);
    }

    #[test]
    fn ones_covers_every_position_exactly() {
        let shape = TensorShape::new(3, 5, 7);
        let t = SpikeTensor::ones(shape);
        assert_eq!(t.count_ones(), shape.len());
        assert_eq!(t.density(), 1.0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut t = SpikeTensor::zeros(TensorShape::new(4, 4, 4));
        t.set(3, 3, 3, true);
        assert!(t.get(3, 3, 3));
        t.set(3, 3, 3, false);
        assert!(!t.get(3, 3, 3));
    }

    #[test]
    fn count_in_region_matches_manual_count() {
        let t = small();
        assert_eq!(t.count_in_region((0, 1), (0, 2), 0), 1);
        assert_eq!(t.count_in_region((0, 1), (0, 2), 2), 1);
        assert_eq!(t.count_in_region((0, 2), (0, 3), 3), 1);
        assert_eq!(t.count_in_region((0, 2), (0, 3), 1), 0);
    }

    #[test]
    fn count_in_region_clamps_ranges() {
        let t = small();
        assert_eq!(t.count_in_region((0, 100), (0, 100), 3), 1);
    }

    #[test]
    fn iter_active_yields_exactly_set_positions() {
        let t = small();
        let active: Vec<_> = t.iter_active().collect();
        assert_eq!(active, vec![(0, 0, 0), (0, 1, 2), (1, 2, 3)]);
    }

    #[test]
    fn feature_and_token_counts() {
        let t = small();
        assert_eq!(t.feature_count(0), 1);
        assert_eq!(t.feature_count(1), 0);
        assert_eq!(t.token_count(0, 1), 1);
        assert_eq!(t.token_count(1, 2), 1);
        assert_eq!(t.per_feature_counts(), vec![1, 0, 1, 1]);
        assert_eq!(t.per_token_counts(), vec![1, 1, 1]);
        assert_eq!(t.per_timestep_counts(), vec![2, 1]);
    }

    #[test]
    fn and_or_respect_shapes() {
        let a = small();
        let mut b = SpikeTensor::zeros(a.shape());
        b.set(0, 0, 0, true);
        b.set(1, 1, 1, true);
        let and = a.and(&b).unwrap();
        assert_eq!(and.count_ones(), 1);
        assert!(and.get(0, 0, 0));
        let or = a.or(&b).unwrap();
        assert_eq!(or.count_ones(), 4);

        let c = SpikeTensor::zeros(TensorShape::new(1, 1, 1));
        assert!(a.and(&c).is_err());
        assert!(a.or(&c).is_err());
    }

    #[test]
    fn masked_by_features_keeps_only_selected_columns() {
        let t = small();
        let masked = t.masked_by_features(&[2, 3]);
        assert_eq!(masked.count_ones(), 2);
        assert!(!masked.get(0, 0, 0));
        assert!(masked.get(0, 1, 2));
    }

    #[test]
    fn head_slice_extracts_contiguous_features() {
        let shape = TensorShape::new(1, 2, 8);
        let t = SpikeTensor::from_fn(shape, |_, _, d| d >= 4);
        let head0 = t.head_slice(0, 2);
        let head1 = t.head_slice(1, 2);
        assert_eq!(head0.count_ones(), 0);
        assert_eq!(head1.count_ones(), 2 * 4);
    }

    #[test]
    fn packed_bytes_rounds_up() {
        let t = SpikeTensor::zeros(TensorShape::new(1, 1, 9));
        assert_eq!(t.packed_bytes(), 2);
    }

    #[test]
    fn from_fn_matches_predicate() {
        let shape = TensorShape::new(2, 2, 2);
        let t = SpikeTensor::from_fn(shape, |t, n, d| t == 1 && n == 0 && d == 1);
        assert_eq!(t.count_ones(), 1);
        assert!(t.get(1, 0, 1));
    }
}
