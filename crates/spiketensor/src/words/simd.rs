//! Runtime-dispatched SIMD kernels under the word-parallel layer.
//!
//! The scalar word kernels in [`words`](crate::words) process 64 spike
//! positions per instruction; this module pushes below that, to 256-bit
//! (AVX2), 512-bit (AVX-512) and 128-bit (NEON) rows. CPU features are
//! detected **once at runtime** (`is_x86_feature_detected!` /
//! `is_aarch64_feature_detected!`) and the best available tier is selected
//! into a [`KernelDispatch`] table of plain function pointers; the scalar
//! word path is the universal fallback, so every binary runs everywhere.
//!
//! The operation set mirrors what the hot callers actually do:
//!
//! * [`KernelDispatch::popcount`] — bulk popcount over a word slice
//!   (tensor-wide spike counts, density, sparsity statistics).
//! * [`KernelDispatch::and_popcount`] — fused AND + popcount over two
//!   aligned word slices (the binary `Q·Kᵀ` attention score, ECP scoring).
//! * [`KernelDispatch::add_assign`] — dense `dst[i] += src[i]` over `f32`
//!   rows (the synaptic-integration inner loop of `spike_matmul`).
//! * [`KernelDispatch::masked_add`] — spike-masked accumulate
//!   `dst[d] += w` for every set bit `d` (the SSA `S·V` select-accumulate).
//! * [`KernelDispatch::masked_inc`] — spike-masked integer increment
//!   (Token-Time-Bundle tag construction).
//!
//! **Bit-identity contract.** Every tier of every kernel must produce
//! results bit-for-bit identical to the scalar tier on every input. For the
//! popcount family this is trivial (integer arithmetic). For the `f32`
//! kernels the implementations are written so that each output lane receives
//! *exactly the same sequence of additions* as the scalar loop: `add_assign`
//! is element-wise (no reassociation), and `masked_add` uses blend/merge
//! semantics — untouched lanes keep their exact bit pattern rather than
//! having `+0.0` added (which would flip a `-0.0` lane to `+0.0`). The
//! per-tier differential proptest suite (`tests/simd_differential.rs`)
//! pins this on every tier the host supports.
//!
//! # Safety
//!
//! This is the only module in the workspace that uses `unsafe`. Three
//! invariants keep it sound, each enforced structurally:
//!
//! 1. A `#[target_feature]` entry point is only ever installed in a
//!    [`KernelDispatch`] table after the matching feature bundle was
//!    observed via runtime detection ([`SimdTier::is_available`]), so the
//!    instructions are guaranteed to exist on the executing CPU.
//! 2. All loads/stores are *unaligned* variants over lanes derived from
//!    slice bounds checked in safe code before the unsafe block.
//! 3. Masked kernels never read or write past `dst.len()`; trailing lanes
//!    fall back to the scalar loop.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// One SIMD capability tier, ordered from fallback to widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable scalar `u64` word kernels — always available.
    Scalar,
    /// AArch64 NEON: 128-bit rows, `vcnt` byte popcount.
    Neon,
    /// x86-64 AVX2: 256-bit rows, `vpshufb` nibble-LUT popcount
    /// (the per-vector step of the Harley–Seal / Muła method).
    Avx2,
    /// x86-64 AVX-512: 512-bit rows, native `vpopcntq`
    /// (requires `avx512f` + `avx512vpopcntdq`).
    Avx512,
}

impl SimdTier {
    /// Stable lowercase label, used in engine descriptors, benchmark
    /// records and log lines.
    pub fn label(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Neon => "neon",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }

    /// Whether the executing CPU supports this tier (runtime detection).
    pub fn is_available(self) -> bool {
        match self {
            SimdTier::Scalar => true,
            #[cfg(target_arch = "aarch64")]
            SimdTier::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
            }
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            _ => false,
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
        }
    }

    /// All tiers this host can run, fallback first.
    pub fn available() -> Vec<SimdTier> {
        [
            SimdTier::Scalar,
            SimdTier::Neon,
            SimdTier::Avx2,
            SimdTier::Avx512,
        ]
        .into_iter()
        .filter(|t| t.is_available())
        .collect()
    }
}

/// A resolved table of kernel entry points for one [`SimdTier`].
///
/// Obtained from [`active`] (best tier for this host, selected once) or
/// [`kernels_for`] (a specific available tier, for differential testing).
/// The function pointers are safe to call on any input: the table is only
/// constructed for tiers that passed runtime feature detection.
pub struct KernelDispatch {
    tier: SimdTier,
    popcount: fn(&[u64]) -> u64,
    and_popcount: fn(&[u64], &[u64]) -> u64,
    add_assign: fn(&mut [f32], &[f32]),
    masked_add: fn(&mut [f32], &[u64], f32),
    masked_inc: fn(&mut [u32], &[u64]),
}

impl KernelDispatch {
    /// The tier this table was resolved for.
    pub fn tier(&self) -> SimdTier {
        self.tier
    }

    /// Total number of set bits across `words`.
    #[inline]
    pub fn popcount(&self, words: &[u64]) -> u64 {
        (self.popcount)(words)
    }

    /// `Σ_i (a[i] & b[i]).count_ones()` — the word-aligned binary inner
    /// product.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the slices differ in length.
    #[inline]
    pub fn and_popcount(&self, a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len(), "and_popcount requires equal lengths");
        (self.and_popcount)(a, b)
    }

    /// Element-wise `dst[i] += src[i]` over `f32` rows.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the slices differ in length.
    #[inline]
    pub fn add_assign(&self, dst: &mut [f32], src: &[f32]) {
        debug_assert_eq!(dst.len(), src.len(), "add_assign requires equal lengths");
        (self.add_assign)(dst, src);
    }

    /// Spike-masked accumulate: `dst[d] += weight` for every set bit `d` of
    /// `bits` with `d < dst.len()`. Unset lanes keep their exact bit
    /// pattern (blend semantics, not `+0.0`).
    ///
    /// `bits` must hold `dst.len().div_ceil(64)` logical words with all
    /// bits at index `>= dst.len()` clear — the same tail-zero invariant
    /// the packed tensor maintains.
    #[inline]
    pub fn masked_add(&self, dst: &mut [f32], bits: &[u64], weight: f32) {
        debug_assert_eq!(bits.len(), dst.len().div_ceil(64), "masked_add word count");
        debug_assert!(tail_is_clear(bits, dst.len()), "masked_add tail bits set");
        (self.masked_add)(dst, bits, weight);
    }

    /// Spike-masked increment: `dst[d] += 1` for every set bit `d` of
    /// `bits` with `d < dst.len()`. Same contract as
    /// [`KernelDispatch::masked_add`].
    #[inline]
    pub fn masked_inc(&self, dst: &mut [u32], bits: &[u64]) {
        debug_assert_eq!(bits.len(), dst.len().div_ceil(64), "masked_inc word count");
        debug_assert!(tail_is_clear(bits, dst.len()), "masked_inc tail bits set");
        (self.masked_inc)(dst, bits);
    }
}

/// Checks the masked-kernel input contract: bits at or beyond `len` clear.
fn tail_is_clear(bits: &[u64], len: usize) -> bool {
    if len.is_multiple_of(64) {
        return true;
    }
    match bits.last() {
        Some(&last) => last & !((1u64 << (len % 64)) - 1) == 0,
        None => true,
    }
}

/// Minimum number of words before the word kernels route through the
/// dispatch table. Short rows (e.g. a single `D = 128` feature row is two
/// words) are served faster by the inlined scalar loop than by an indirect
/// call, so callers compare against this before dispatching.
pub const DISPATCH_MIN_WORDS: usize = 4;

static SCALAR: KernelDispatch = KernelDispatch {
    tier: SimdTier::Scalar,
    popcount: scalar::popcount,
    and_popcount: scalar::and_popcount,
    add_assign: scalar::add_assign,
    masked_add: scalar::masked_add,
    masked_inc: scalar::masked_inc,
};

#[cfg(target_arch = "x86_64")]
static AVX2: KernelDispatch = KernelDispatch {
    tier: SimdTier::Avx2,
    popcount: avx2::popcount,
    and_popcount: avx2::and_popcount,
    add_assign: avx2::add_assign,
    masked_add: avx2::masked_add,
    masked_inc: avx2::masked_inc,
};

#[cfg(target_arch = "x86_64")]
static AVX512: KernelDispatch = KernelDispatch {
    tier: SimdTier::Avx512,
    popcount: avx512::popcount,
    and_popcount: avx512::and_popcount,
    add_assign: avx512::add_assign,
    masked_add: avx512::masked_add,
    masked_inc: avx512::masked_inc,
};

#[cfg(target_arch = "aarch64")]
static NEON: KernelDispatch = KernelDispatch {
    tier: SimdTier::Neon,
    popcount: neon::popcount,
    and_popcount: neon::and_popcount,
    add_assign: neon::add_assign,
    masked_add: neon::masked_add,
    masked_inc: neon::masked_inc,
};

/// The dispatch table for a specific tier, or `None` if the host cannot
/// run it. Lets the differential suite exercise *every* available tier,
/// not just the one [`active`] selected.
pub fn kernels_for(tier: SimdTier) -> Option<&'static KernelDispatch> {
    if !tier.is_available() {
        return None;
    }
    match tier {
        SimdTier::Scalar => Some(&SCALAR),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => Some(&AVX2),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 => Some(&AVX512),
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => Some(&NEON),
        #[allow(unreachable_patterns)]
        _ => None,
    }
}

/// The best dispatch table for this host, detected once and cached for the
/// life of the process. Never fails: the scalar tier is always available.
pub fn active() -> &'static KernelDispatch {
    static ACTIVE: OnceLock<&'static KernelDispatch> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        SimdTier::available()
            .into_iter()
            .max()
            .and_then(kernels_for)
            .unwrap_or(&SCALAR)
    })
}

/// Portable scalar tier — the universal fallback and the bit-identity
/// reference every other tier is differentially tested against.
mod scalar {
    pub(super) fn popcount(words: &[u64]) -> u64 {
        words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    pub(super) fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| u64::from((x & y).count_ones()))
            .sum()
    }

    pub(super) fn add_assign(dst: &mut [f32], src: &[f32]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }

    pub(super) fn masked_add(dst: &mut [f32], bits: &[u64], weight: f32) {
        for (wi, &word) in bits.iter().enumerate() {
            let mut rest = word;
            while rest != 0 {
                let d = wi * 64 + rest.trailing_zeros() as usize;
                dst[d] += weight;
                rest &= rest - 1;
            }
        }
    }

    pub(super) fn masked_inc(dst: &mut [u32], bits: &[u64]) {
        for (wi, &word) in bits.iter().enumerate() {
            let mut rest = word;
            while rest != 0 {
                let d = wi * 64 + rest.trailing_zeros() as usize;
                dst[d] += 1;
                rest &= rest - 1;
            }
        }
    }
}

/// AVX2 tier: 256-bit rows, four `u64` per vector. Popcount uses the
/// `vpshufb` nibble-LUT technique (per-vector step of Harley–Seal/Muła)
/// with `vpsadbw` folding byte counts into per-lane `u64` sums.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    pub(super) fn popcount(words: &[u64]) -> u64 {
        // SAFETY: installed in a dispatch table only after runtime AVX2
        // detection (SimdTier::Avx2.is_available()).
        unsafe { popcount_impl(words) }
    }

    pub(super) fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: as above — AVX2 presence verified at table selection.
        unsafe { and_popcount_impl(a, b) }
    }

    pub(super) fn add_assign(dst: &mut [f32], src: &[f32]) {
        // SAFETY: as above — AVX2 presence verified at table selection.
        unsafe { add_assign_impl(dst, src) }
    }

    pub(super) fn masked_add(dst: &mut [f32], bits: &[u64], weight: f32) {
        // SAFETY: as above — AVX2 presence verified at table selection.
        unsafe { masked_add_impl(dst, bits, weight) }
    }

    pub(super) fn masked_inc(dst: &mut [u32], bits: &[u64]) {
        // SAFETY: as above — AVX2 presence verified at table selection.
        unsafe { masked_inc_impl(dst, bits) }
    }

    /// Sums the four `u64` lanes of an accumulator vector.
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_epi64(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        lanes.iter().sum()
    }

    /// Per-vector popcount of 32 bytes via the nibble lookup table.
    #[target_feature(enable = "avx2")]
    unsafe fn byte_counts(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn popcount_impl(words: &[u64]) -> u64 {
        let mut acc = _mm256_setzero_si256();
        let mut chunks = words.chunks_exact(4);
        for chunk in &mut chunks {
            let v = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(byte_counts(v), _mm256_setzero_si256()));
        }
        let mut total = reduce_epi64(acc);
        for &w in chunks.remainder() {
            total += u64::from(w.count_ones());
        }
        total
    }

    #[target_feature(enable = "avx2")]
    unsafe fn and_popcount_impl(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_si256();
        let full = n / 4 * 4;
        let mut i = 0;
        while i < full {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let v = _mm256_and_si256(va, vb);
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(byte_counts(v), _mm256_setzero_si256()));
            i += 4;
        }
        let mut total = reduce_epi64(acc);
        while i < n {
            total += u64::from((a[i] & b[i]).count_ones());
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    unsafe fn add_assign_impl(dst: &mut [f32], src: &[f32]) {
        let n = dst.len().min(src.len());
        let full = n / 8 * 8;
        let mut i = 0;
        while i < full {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, s));
            i += 8;
        }
        while i < n {
            dst[i] += src[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn masked_add_impl(dst: &mut [f32], bits: &[u64], weight: f32) {
        let wvec = _mm256_set1_ps(weight);
        let lane_bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
        let full = dst.len() / 8 * 8;
        let mut d = 0;
        while d < full {
            let byte = ((bits[d / 64] >> (d % 64)) & 0xff) as i32;
            if byte != 0 {
                let m = _mm256_cmpeq_epi32(
                    _mm256_and_si256(_mm256_set1_epi32(byte), lane_bits),
                    lane_bits,
                );
                let cur = _mm256_loadu_ps(dst.as_ptr().add(d));
                // Blend, not add-zero: unset lanes keep their exact bits.
                let merged =
                    _mm256_blendv_ps(cur, _mm256_add_ps(cur, wvec), _mm256_castsi256_ps(m));
                _mm256_storeu_ps(dst.as_mut_ptr().add(d), merged);
            }
            d += 8;
        }
        for b in d..dst.len() {
            if (bits[b / 64] >> (b % 64)) & 1 == 1 {
                dst[b] += weight;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn masked_inc_impl(dst: &mut [u32], bits: &[u64]) {
        let one = _mm256_set1_epi32(1);
        let lane_bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
        let full = dst.len() / 8 * 8;
        let mut d = 0;
        while d < full {
            let byte = ((bits[d / 64] >> (d % 64)) & 0xff) as i32;
            if byte != 0 {
                let m = _mm256_cmpeq_epi32(
                    _mm256_and_si256(_mm256_set1_epi32(byte), lane_bits),
                    lane_bits,
                );
                let cur = _mm256_loadu_si256(dst.as_ptr().add(d) as *const __m256i);
                // Integer add of (mask & 1) is exact: +1 where set, +0 where not.
                let merged = _mm256_add_epi32(cur, _mm256_and_si256(m, one));
                _mm256_storeu_si256(dst.as_mut_ptr().add(d) as *mut __m256i, merged);
            }
            d += 8;
        }
        for b in d..dst.len() {
            if (bits[b / 64] >> (b % 64)) & 1 == 1 {
                dst[b] += 1;
            }
        }
    }
}

/// AVX-512 tier: 512-bit rows, native `vpopcntq` and hardware mask
/// registers (the bit word *is* the lane mask).
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::*;

    pub(super) fn popcount(words: &[u64]) -> u64 {
        // SAFETY: installed in a dispatch table only after runtime
        // avx512f+avx512vpopcntdq detection (SimdTier::Avx512.is_available()).
        unsafe { popcount_impl(words) }
    }

    pub(super) fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: as above — AVX-512 presence verified at table selection.
        unsafe { and_popcount_impl(a, b) }
    }

    pub(super) fn add_assign(dst: &mut [f32], src: &[f32]) {
        // SAFETY: as above — AVX-512 presence verified at table selection.
        unsafe { add_assign_impl(dst, src) }
    }

    pub(super) fn masked_add(dst: &mut [f32], bits: &[u64], weight: f32) {
        // SAFETY: as above — AVX-512 presence verified at table selection.
        unsafe { masked_add_impl(dst, bits, weight) }
    }

    pub(super) fn masked_inc(dst: &mut [u32], bits: &[u64]) {
        // SAFETY: as above — AVX-512 presence verified at table selection.
        unsafe { masked_inc_impl(dst, bits) }
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn popcount_impl(words: &[u64]) -> u64 {
        let mut acc = _mm512_setzero_si512();
        let mut chunks = words.chunks_exact(8);
        for chunk in &mut chunks {
            let v = _mm512_loadu_si512(chunk.as_ptr() as *const _);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
        }
        let mut total = _mm512_reduce_add_epi64(acc) as u64;
        for &w in chunks.remainder() {
            total += u64::from(w.count_ones());
        }
        total
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn and_popcount_impl(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len().min(b.len());
        let mut acc = _mm512_setzero_si512();
        let full = n / 8 * 8;
        let mut i = 0;
        while i < full {
            let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const _);
            let vb = _mm512_loadu_si512(b.as_ptr().add(i) as *const _);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
            i += 8;
        }
        let mut total = _mm512_reduce_add_epi64(acc) as u64;
        while i < n {
            total += u64::from((a[i] & b[i]).count_ones());
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn add_assign_impl(dst: &mut [f32], src: &[f32]) {
        let n = dst.len().min(src.len());
        let full = n / 16 * 16;
        let mut i = 0;
        while i < full {
            let d = _mm512_loadu_ps(dst.as_ptr().add(i));
            let s = _mm512_loadu_ps(src.as_ptr().add(i));
            _mm512_storeu_ps(dst.as_mut_ptr().add(i), _mm512_add_ps(d, s));
            i += 16;
        }
        while i < n {
            dst[i] += src[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn masked_add_impl(dst: &mut [f32], bits: &[u64], weight: f32) {
        let wvec = _mm512_set1_ps(weight);
        let full = dst.len() / 16 * 16;
        let mut d = 0;
        while d < full {
            let mask = ((bits[d / 64] >> (d % 64)) & 0xffff) as __mmask16;
            if mask != 0 {
                let cur = _mm512_loadu_ps(dst.as_ptr().add(d));
                // Merge-masked add: unselected lanes pass `cur` through
                // untouched, preserving exact bit patterns.
                let merged = _mm512_mask_add_ps(cur, mask, cur, wvec);
                _mm512_storeu_ps(dst.as_mut_ptr().add(d), merged);
            }
            d += 16;
        }
        for b in d..dst.len() {
            if (bits[b / 64] >> (b % 64)) & 1 == 1 {
                dst[b] += weight;
            }
        }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn masked_inc_impl(dst: &mut [u32], bits: &[u64]) {
        let one = _mm512_set1_epi32(1);
        let full = dst.len() / 16 * 16;
        let mut d = 0;
        while d < full {
            let mask = ((bits[d / 64] >> (d % 64)) & 0xffff) as __mmask16;
            if mask != 0 {
                let cur = _mm512_loadu_si512(dst.as_ptr().add(d) as *const _);
                let merged = _mm512_mask_add_epi32(cur, mask, cur, one);
                _mm512_storeu_si512(dst.as_mut_ptr().add(d) as *mut _, merged);
            }
            d += 16;
        }
        for b in d..dst.len() {
            if (bits[b / 64] >> (b % 64)) & 1 == 1 {
                dst[b] += 1;
            }
        }
    }
}

/// AArch64 NEON tier: 128-bit rows, `vcnt` byte popcount with horizontal
/// `vaddv` folds, `vbsl` bit-select for the masked kernels.
#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    pub(super) fn popcount(words: &[u64]) -> u64 {
        // SAFETY: installed in a dispatch table only after runtime NEON
        // detection (SimdTier::Neon.is_available()).
        unsafe { popcount_impl(words) }
    }

    pub(super) fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: as above — NEON presence verified at table selection.
        unsafe { and_popcount_impl(a, b) }
    }

    pub(super) fn add_assign(dst: &mut [f32], src: &[f32]) {
        // SAFETY: as above — NEON presence verified at table selection.
        unsafe { add_assign_impl(dst, src) }
    }

    pub(super) fn masked_add(dst: &mut [f32], bits: &[u64], weight: f32) {
        // SAFETY: as above — NEON presence verified at table selection.
        unsafe { masked_add_impl(dst, bits, weight) }
    }

    pub(super) fn masked_inc(dst: &mut [u32], bits: &[u64]) {
        // SAFETY: as above — NEON presence verified at table selection.
        unsafe { masked_inc_impl(dst, bits) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn popcount_impl(words: &[u64]) -> u64 {
        let mut total = 0u64;
        let mut chunks = words.chunks_exact(2);
        for chunk in &mut chunks {
            let v = vld1q_u64(chunk.as_ptr());
            // 16 bytes × ≤8 set bits each: the u8 horizontal sum (≤128)
            // cannot overflow.
            total += u64::from(vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v))));
        }
        for &w in chunks.remainder() {
            total += u64::from(w.count_ones());
        }
        total
    }

    #[target_feature(enable = "neon")]
    unsafe fn and_popcount_impl(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len().min(b.len());
        let full = n / 2 * 2;
        let mut total = 0u64;
        let mut i = 0;
        while i < full {
            let v = vandq_u64(vld1q_u64(a.as_ptr().add(i)), vld1q_u64(b.as_ptr().add(i)));
            total += u64::from(vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v))));
            i += 2;
        }
        while i < n {
            total += u64::from((a[i] & b[i]).count_ones());
            i += 1;
        }
        total
    }

    #[target_feature(enable = "neon")]
    unsafe fn add_assign_impl(dst: &mut [f32], src: &[f32]) {
        let n = dst.len().min(src.len());
        let full = n / 4 * 4;
        let mut i = 0;
        while i < full {
            let d = vld1q_f32(dst.as_ptr().add(i));
            let s = vld1q_f32(src.as_ptr().add(i));
            vst1q_f32(dst.as_mut_ptr().add(i), vaddq_f32(d, s));
            i += 4;
        }
        while i < n {
            dst[i] += src[i];
            i += 1;
        }
    }

    #[target_feature(enable = "neon")]
    unsafe fn masked_add_impl(dst: &mut [f32], bits: &[u64], weight: f32) {
        let wvec = vdupq_n_f32(weight);
        let lane_bits: [u32; 4] = [1, 2, 4, 8];
        let lanes = vld1q_u32(lane_bits.as_ptr());
        let full = dst.len() / 4 * 4;
        let mut d = 0;
        while d < full {
            let nibble = ((bits[d / 64] >> (d % 64)) & 0xf) as u32;
            if nibble != 0 {
                let m = vtstq_u32(vdupq_n_u32(nibble), lanes);
                let cur = vld1q_f32(dst.as_ptr().add(d));
                // Bit-select keeps unset lanes' exact bit patterns.
                let merged = vbslq_f32(m, vaddq_f32(cur, wvec), cur);
                vst1q_f32(dst.as_mut_ptr().add(d), merged);
            }
            d += 4;
        }
        for b in d..dst.len() {
            if (bits[b / 64] >> (b % 64)) & 1 == 1 {
                dst[b] += weight;
            }
        }
    }

    #[target_feature(enable = "neon")]
    unsafe fn masked_inc_impl(dst: &mut [u32], bits: &[u64]) {
        let one = vdupq_n_u32(1);
        let lane_bits: [u32; 4] = [1, 2, 4, 8];
        let lanes = vld1q_u32(lane_bits.as_ptr());
        let full = dst.len() / 4 * 4;
        let mut d = 0;
        while d < full {
            let nibble = ((bits[d / 64] >> (d % 64)) & 0xf) as u32;
            if nibble != 0 {
                let m = vtstq_u32(vdupq_n_u32(nibble), lanes);
                let cur = vld1q_u32(dst.as_ptr().add(d));
                let merged = vaddq_u32(cur, vandq_u32(m, one));
                vst1q_u32(dst.as_mut_ptr().add(d), merged);
            }
            d += 4;
        }
        for b in d..dst.len() {
            if (bits[b / 64] >> (b % 64)) & 1 == 1 {
                dst[b] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_tier_is_always_available() {
        assert!(SimdTier::Scalar.is_available());
        assert!(SimdTier::available().contains(&SimdTier::Scalar));
        assert!(kernels_for(SimdTier::Scalar).is_some());
    }

    #[test]
    fn active_is_the_widest_available_tier() {
        let best = SimdTier::available().into_iter().max().unwrap();
        assert_eq!(active().tier(), best);
    }

    #[test]
    fn unavailable_tiers_yield_no_kernels() {
        for tier in [
            SimdTier::Scalar,
            SimdTier::Neon,
            SimdTier::Avx2,
            SimdTier::Avx512,
        ] {
            assert_eq!(kernels_for(tier).is_some(), tier.is_available());
        }
    }

    #[test]
    fn every_tier_agrees_on_a_fixed_vector() {
        let a: Vec<u64> = (0..13)
            .map(|i| 0x9e3779b97f4a7c15u64.rotate_left(i))
            .collect();
        let b: Vec<u64> = (0..13)
            .map(|i| 0xc2b2ae3d27d4eb4fu64.rotate_left(2 * i))
            .collect();
        let expect_pop = a.iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
        let expect_and = a
            .iter()
            .zip(&b)
            .map(|(x, y)| u64::from((x & y).count_ones()))
            .sum::<u64>();
        for tier in SimdTier::available() {
            let k = kernels_for(tier).unwrap();
            assert_eq!(k.popcount(&a), expect_pop, "popcount tier {tier:?}");
            assert_eq!(k.and_popcount(&a, &b), expect_and, "and tier {tier:?}");
        }
    }

    #[test]
    fn masked_add_preserves_negative_zero_in_unset_lanes() {
        for tier in SimdTier::available() {
            let k = kernels_for(tier).unwrap();
            let mut dst = vec![-0.0f32; 70];
            let mut bits = vec![0u64; 2];
            bits[0] = 0b1010;
            bits[1] = 0b1; // bit 64
            k.masked_add(&mut dst, &bits, 2.5);
            for (i, &v) in dst.iter().enumerate() {
                if i == 1 || i == 3 || i == 64 {
                    assert_eq!(v, 2.5, "tier {tier:?} lane {i}");
                } else {
                    assert!(
                        v == 0.0 && v.is_sign_negative(),
                        "tier {tier:?} lane {i} lost -0.0: {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SimdTier::Scalar.label(), "scalar");
        assert_eq!(SimdTier::Avx512.label(), "avx512");
        assert_eq!(SimdTier::Avx2.label(), "avx2");
        assert_eq!(SimdTier::Neon.label(), "neon");
    }
}
