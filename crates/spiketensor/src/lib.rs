//! # bishop-spiketensor
//!
//! Foundation data structures for the Bishop spiking-transformer
//! reproduction: bit-packed binary spike tensors laid out as
//! `T (timesteps) × N (tokens) × D (features)`, dense floating-point weight
//! matrices, density-controlled random workload generators, and summary
//! statistics.
//!
//! Spiking transformers operate on *binary* activations: every value produced
//! by a LIF neuron layer is 0 or 1 (Eq. 2 of the paper). The accelerator
//! evaluation only ever needs to know *which* positions fired, so the natural
//! in-memory representation is a bitmap. [`SpikeTensor`] packs 64 positions
//! per machine word (feature axis fastest-varying, each `(t, n)` feature row
//! a contiguous bit range — see the type docs for the full layout guarantee)
//! and provides the slicing/counting primitives that the Token-Time-Bundle
//! machinery in `bishop-bundle` builds on. The [`words`] module exposes the
//! word-parallel kernel layer (zero-copy [`RowBits`] row views, AND+popcount
//! [`RowBits::dot`], `trailing_zeros`-driven set-bit iteration) that the
//! model and accelerator hot paths run on, and [`words::simd`] pushes below
//! it with runtime-dispatched AVX2 / AVX-512 / NEON kernels selected once
//! per process into a [`simd::KernelDispatch`](words::simd::KernelDispatch)
//! table (scalar word fallback everywhere else).
//!
//! ```
//! use bishop_spiketensor::{SpikeTensor, TensorShape};
//!
//! let shape = TensorShape::new(4, 8, 16);
//! let mut spikes = SpikeTensor::zeros(shape);
//! spikes.set(0, 3, 7, true);
//! assert_eq!(spikes.count_ones(), 1);
//! assert!(spikes.get(0, 3, 7));
//! ```

// `deny` rather than `forbid`: the `words::simd` module is the single,
// explicitly-allowed exception — runtime-detected SIMD intrinsics with the
// safety argument documented at the module head. Everything else in the
// crate (and the rest of the workspace) remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod error;
pub mod generate;
pub mod shape;
pub mod stats;
pub mod tensor;
pub mod words;

pub use dense::DenseMatrix;
pub use error::ShapeError;
pub use generate::{SpikeTraceGenerator, TraceProfile};
pub use shape::TensorShape;
pub use stats::{DensitySummary, FeatureDensity};
pub use tensor::SpikeTensor;
pub use words::simd::{KernelDispatch, SimdTier};
pub use words::{RowBits, SetBits};
