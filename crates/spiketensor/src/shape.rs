//! Tensor shape of a spatiotemporal spiking activation tensor.

use std::fmt;

/// Shape of a spiking activation tensor: `T` timesteps × `N` tokens ×
/// `D` features.
///
/// The layout used throughout the workspace is row-major with the feature
/// dimension innermost: linear index = `((t * tokens) + n) * features + d`.
/// This matches how spiking transformers produce activations (a token's
/// feature vector at a timestep is contiguous) and makes per-feature slicing
/// a strided walk.
///
/// ```
/// use bishop_spiketensor::TensorShape;
/// let shape = TensorShape::new(4, 64, 384);
/// assert_eq!(shape.len(), 4 * 64 * 384);
/// assert_eq!(shape.linear_index(1, 2, 3), (1 * 64 + 2) * 384 + 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorShape {
    /// Number of timesteps `T`.
    pub timesteps: usize,
    /// Number of spatial tokens `N`.
    pub tokens: usize,
    /// Number of features `D`.
    pub features: usize,
}

impl TensorShape {
    /// Creates a new shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; a degenerate tensor has no meaning in
    /// the workload model and would silently break downstream bundling math.
    pub fn new(timesteps: usize, tokens: usize, features: usize) -> Self {
        assert!(
            timesteps > 0 && tokens > 0 && features > 0,
            "tensor dimensions must be non-zero (got T={timesteps}, N={tokens}, D={features})"
        );
        Self {
            timesteps,
            tokens,
            features,
        }
    }

    /// Total number of positions in the tensor.
    pub fn len(&self) -> usize {
        self.timesteps * self.tokens * self.features
    }

    /// Whether the tensor has zero positions. Always `false` for a
    /// constructed shape but provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of (timestep, token) pairs, i.e. positions per feature.
    pub fn spatiotemporal_len(&self) -> usize {
        self.timesteps * self.tokens
    }

    /// Linear index of position `(t, n, d)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[inline]
    pub fn linear_index(&self, t: usize, n: usize, d: usize) -> usize {
        assert!(
            t < self.timesteps && n < self.tokens && d < self.features,
            "index (t={t}, n={n}, d={d}) out of bounds for shape {self}"
        );
        (t * self.tokens + n) * self.features + d
    }

    /// Inverse of [`TensorShape::linear_index`].
    #[inline]
    pub fn coordinates(&self, linear: usize) -> (usize, usize, usize) {
        assert!(linear < self.len(), "linear index {linear} out of bounds");
        let d = linear % self.features;
        let rest = linear / self.features;
        let n = rest % self.tokens;
        let t = rest / self.tokens;
        (t, n, d)
    }

    /// Iterates over all `(t, n, d)` coordinates in layout order.
    pub fn iter_coordinates(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let shape = *self;
        (0..shape.len()).map(move |i| shape.coordinates(i))
    }

    /// Returns the shape of a single attention head given `heads` splitting
    /// the feature dimension.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide the feature dimension.
    pub fn per_head(&self, heads: usize) -> TensorShape {
        assert!(heads > 0, "head count must be non-zero");
        assert_eq!(
            self.features % heads,
            0,
            "feature dimension {} is not divisible by {} heads",
            self.features,
            heads
        );
        TensorShape::new(self.timesteps, self.tokens, self.features / heads)
    }

    /// Returns a copy with the feature dimension replaced.
    pub fn with_features(&self, features: usize) -> TensorShape {
        TensorShape::new(self.timesteps, self.tokens, features)
    }

    /// Returns a copy with the token dimension replaced.
    pub fn with_tokens(&self, tokens: usize) -> TensorShape {
        TensorShape::new(self.timesteps, tokens, self.features)
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[T={} x N={} x D={}]",
            self.timesteps, self.tokens, self.features
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_index_round_trips() {
        let shape = TensorShape::new(3, 5, 7);
        for t in 0..3 {
            for n in 0..5 {
                for d in 0..7 {
                    let linear = shape.linear_index(t, n, d);
                    assert_eq!(shape.coordinates(linear), (t, n, d));
                }
            }
        }
    }

    #[test]
    fn len_matches_product() {
        let shape = TensorShape::new(4, 64, 384);
        assert_eq!(shape.len(), 4 * 64 * 384);
        assert_eq!(shape.spatiotemporal_len(), 4 * 64);
        assert!(!shape.is_empty());
    }

    #[test]
    fn feature_dimension_is_innermost() {
        let shape = TensorShape::new(2, 2, 4);
        assert_eq!(shape.linear_index(0, 0, 1) - shape.linear_index(0, 0, 0), 1);
        assert_eq!(shape.linear_index(0, 1, 0) - shape.linear_index(0, 0, 0), 4);
        assert_eq!(shape.linear_index(1, 0, 0) - shape.linear_index(0, 0, 0), 8);
    }

    #[test]
    fn per_head_divides_features() {
        let shape = TensorShape::new(4, 64, 384);
        let head = shape.per_head(8);
        assert_eq!(head.features, 48);
        assert_eq!(head.tokens, 64);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn per_head_rejects_non_divisor() {
        TensorShape::new(4, 64, 384).per_head(7);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        TensorShape::new(0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_index_panics() {
        let shape = TensorShape::new(2, 2, 2);
        shape.linear_index(2, 0, 0);
    }

    #[test]
    fn iter_coordinates_covers_everything_once() {
        let shape = TensorShape::new(2, 3, 4);
        let coords: Vec<_> = shape.iter_coordinates().collect();
        assert_eq!(coords.len(), shape.len());
        let mut seen = std::collections::HashSet::new();
        for c in coords {
            assert!(seen.insert(c), "duplicate coordinate {c:?}");
        }
    }

    #[test]
    fn display_is_informative() {
        let shape = TensorShape::new(4, 196, 128);
        assert_eq!(format!("{shape}"), "[T=4 x N=196 x D=128]");
    }

    #[test]
    fn with_features_and_tokens_replace_dimensions() {
        let shape = TensorShape::new(4, 64, 384);
        assert_eq!(shape.with_features(128).features, 128);
        assert_eq!(shape.with_tokens(196).tokens, 196);
        assert_eq!(shape.with_features(128).tokens, 64);
    }
}
