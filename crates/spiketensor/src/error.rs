//! Error types shared by the tensor primitives.

use std::error::Error;
use std::fmt;

use crate::TensorShape;

/// Error returned when two tensors (or a tensor and a matrix) have
/// incompatible shapes for the requested operation.
///
/// ```
/// use bishop_spiketensor::{ShapeError, TensorShape};
/// let err = ShapeError::new(
///     "elementwise or",
///     TensorShape::new(2, 2, 2),
///     TensorShape::new(2, 2, 4),
/// );
/// assert!(err.to_string().contains("elementwise or"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    operation: &'static str,
    left: TensorShape,
    right: TensorShape,
}

impl ShapeError {
    /// Creates a new shape mismatch error for `operation`.
    pub fn new(operation: &'static str, left: TensorShape, right: TensorShape) -> Self {
        Self {
            operation,
            left,
            right,
        }
    }

    /// The operation that failed.
    pub fn operation(&self) -> &'static str {
        self.operation
    }

    /// Shape of the left-hand operand.
    pub fn left(&self) -> TensorShape {
        self.left
    }

    /// Shape of the right-hand operand.
    pub fn right(&self) -> TensorShape {
        self.right
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: left operand is {}, right operand is {}",
            self.operation, self.left, self.right
        )
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_both_shapes() {
        let err = ShapeError::new("and", TensorShape::new(1, 2, 3), TensorShape::new(3, 2, 1));
        let text = err.to_string();
        assert!(text.contains("[T=1 x N=2 x D=3]"));
        assert!(text.contains("[T=3 x N=2 x D=1]"));
        assert_eq!(err.operation(), "and");
    }

    #[test]
    fn accessors_round_trip() {
        let left = TensorShape::new(2, 4, 8);
        let right = TensorShape::new(2, 4, 16);
        let err = ShapeError::new("merge", left, right);
        assert_eq!(err.left(), left);
        assert_eq!(err.right(), right);
    }
}
