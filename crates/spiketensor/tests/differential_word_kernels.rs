//! Differential property tests: every word-parallel kernel in
//! `bishop-spiketensor` must be bit-for-bit identical to its scalar
//! `*_reference` twin on random shapes — including tensors whose total
//! length is not a multiple of 64 (partial tail words) and feature widths
//! that are not a multiple of 64 (rows straddling word boundaries at
//! varying offsets).

use bishop_spiketensor::{SpikeTensor, TensorShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random shape whose feature axis deliberately covers unaligned widths
/// (1, 63, 65, 100 …) as well as aligned ones (64, 128).
fn shape_from(t: usize, n: usize, d_index: usize) -> TensorShape {
    const FEATURES: [usize; 10] = [1, 3, 63, 64, 65, 100, 128, 130, 256, 320];
    TensorShape::new(t, n, FEATURES[d_index % FEATURES.len()])
}

fn random_tensor(shape: TensorShape, density: f64, seed: u64) -> SpikeTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    SpikeTensor::from_fn(shape, |_, _, _| rng.gen_bool(density))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_matches_reference(
        t in 1usize..4,
        n in 1usize..6,
        d_index in 0usize..10,
        density in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let shape = shape_from(t, n, d_index);
        let a = random_tensor(shape, density, seed);
        let b = random_tensor(shape, 1.0 - density * 0.5, seed ^ 0xABCD);
        for ti in 0..shape.timesteps {
            for i in 0..shape.tokens {
                for j in 0..shape.tokens {
                    let x = a.row_words(ti, i);
                    let y = b.row_words(ti, j);
                    prop_assert_eq!(x.dot(&y), x.dot_reference(&y));
                }
            }
        }
    }

    #[test]
    fn masked_subrow_dot_matches_reference(
        n in 1usize..6,
        d_index in 0usize..10,
        density in 0.05f64..0.7,
        split in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        // Sub-row views at arbitrary (start, end) boundaries — the masked
        // per-head slices — must agree with the scalar path too.
        let shape = shape_from(2, n, d_index);
        let a = random_tensor(shape, density, seed);
        let b = random_tensor(shape, density, seed ^ 0x1234);
        let d0 = (shape.features as f64 * split * 0.5) as usize;
        let d1 = d0 + ((shape.features - d0) as f64 * split) as usize;
        for i in 0..shape.tokens {
            let x = a.row_feature_slice(1, i, d0, d1);
            let y = b.row_feature_slice(1, i, d0, d1);
            prop_assert_eq!(x.dot(&y), x.dot_reference(&y));
            prop_assert_eq!(x.len(), d1 - d0);
        }
    }

    #[test]
    fn set_bit_iteration_matches_scalar_scan(
        t in 1usize..4,
        n in 1usize..6,
        d_index in 0usize..10,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let shape = shape_from(t, n, d_index);
        let tensor = random_tensor(shape, density, seed);
        for ti in 0..shape.timesteps {
            for ni in 0..shape.tokens {
                let row = tensor.row_words(ti, ni);
                let word_parallel: Vec<usize> = row.iter_set_bits().collect();
                let scalar: Vec<usize> = (0..shape.features)
                    .filter(|&d| tensor.get(ti, ni, d))
                    .collect();
                prop_assert_eq!(&word_parallel, &scalar);
                prop_assert_eq!(row.count_ones(), scalar.len());
            }
        }
    }

    #[test]
    fn region_popcount_matches_reference(
        t in 1usize..5,
        n in 1usize..8,
        d_index in 0usize..10,
        density in 0.0f64..0.8,
        seed in any::<u64>(),
        t0 in 0usize..4,
        n0 in 0usize..6,
        d_frac in 0.0f64..1.0,
    ) {
        let shape = shape_from(t, n, d_index);
        let tensor = random_tensor(shape, density, seed);
        let d0 = (shape.features as f64 * d_frac * 0.7) as usize;
        // Deliberately over-shoot upper bounds: both paths must clamp.
        let region_t = (t0, t0 + 3);
        let region_n = (n0, n0 + 5);
        let region_d = (d0, d0 + shape.features);
        prop_assert_eq!(
            tensor.count_in_region_features(region_t, region_n, region_d),
            tensor.count_in_region_features_reference(region_t, region_n, region_d)
        );
    }

    #[test]
    fn from_fn_matches_per_bit_set_construction(
        t in 1usize..4,
        n in 1usize..6,
        d_index in 0usize..10,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let shape = shape_from(t, n, d_index);
        let word_local = random_tensor(shape, density, seed);
        // Reference: the old construction path, one `set` per coordinate.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut per_bit = SpikeTensor::zeros(shape);
        for ti in 0..shape.timesteps {
            for ni in 0..shape.tokens {
                for d in 0..shape.features {
                    if rng.gen_bool(density) {
                        per_bit.set(ti, ni, d, true);
                    }
                }
            }
        }
        prop_assert_eq!(word_local, per_bit);
    }

    #[test]
    fn row_round_trips_through_set_row_words(
        t in 1usize..4,
        n in 1usize..6,
        d_index in 0usize..10,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let shape = shape_from(t, n, d_index);
        let tensor = random_tensor(shape, density, seed);
        let mut copy = SpikeTensor::zeros(shape);
        for ti in 0..shape.timesteps {
            for ni in 0..shape.tokens {
                let row = tensor.row_words(ti, ni);
                copy.set_row_words(ti, ni, |i| row.word(i));
            }
        }
        prop_assert_eq!(&copy, &tensor);
        // Garbage bits beyond the row width must be ignored, so a writer
        // passing all-ones tails reproduces the tensor exactly and keeps the
        // tail invariant intact.
        let mut noisy = SpikeTensor::zeros(shape);
        for ti in 0..shape.timesteps {
            for ni in 0..shape.tokens {
                let row = tensor.row_words(ti, ni);
                noisy.set_row_words(ti, ni, |i| {
                    let remaining = shape.features - i * 64;
                    let garbage = if remaining >= 64 { 0 } else { u64::MAX << remaining };
                    row.word(i) | garbage
                });
            }
        }
        prop_assert_eq!(&noisy, &tensor);
    }

    #[test]
    fn counts_and_slices_match_scalar_paths(
        t in 1usize..4,
        n in 1usize..6,
        d_index in 0usize..10,
        density in 0.0f64..0.8,
        seed in any::<u64>(),
    ) {
        let shape = shape_from(t, n, d_index);
        let tensor = random_tensor(shape, density, seed);
        // token_count / per-axis counts versus brute-force get() scans.
        for ti in 0..shape.timesteps {
            for ni in 0..shape.tokens {
                let scalar = (0..shape.features).filter(|&d| tensor.get(ti, ni, d)).count();
                prop_assert_eq!(tensor.token_count(ti, ni), scalar);
            }
        }
        let mut per_feature = vec![0usize; shape.features];
        let mut per_token = vec![0usize; shape.tokens];
        let mut per_timestep = vec![0usize; shape.timesteps];
        for (ti, ni, d) in tensor.iter_active() {
            per_feature[d] += 1;
            per_token[ni] += 1;
            per_timestep[ti] += 1;
        }
        prop_assert_eq!(tensor.per_feature_counts(), per_feature);
        prop_assert_eq!(tensor.per_token_counts(), per_token);
        prop_assert_eq!(tensor.per_timestep_counts(), per_timestep);
        // head_slice versus the scalar gather it replaced.
        for heads in [1usize, 2, 4] {
            if !shape.features.is_multiple_of(heads) {
                continue;
            }
            for h in 0..heads {
                let sliced = tensor.head_slice(h, heads);
                let head_dim = shape.features / heads;
                let expected = SpikeTensor::from_fn(shape.per_head(heads), |ti, ni, d| {
                    tensor.get(ti, ni, h * head_dim + d)
                });
                prop_assert_eq!(&sliced, &expected);
            }
        }
    }
}
