//! Per-tier SIMD differential suite: every kernel of every SIMD tier the
//! executing host supports must be bit-for-bit identical to the scalar
//! reference tier — on unaligned lengths, partial tail words, empty rows,
//! and f32 payloads that include negative zeros and denormals.
//!
//! Tiers the host cannot run are skipped (with a log line, so CI output
//! records which paths were actually exercised); the scalar tier is always
//! available, so the suite never silently degenerates to zero comparisons.

use bishop_spiketensor::words::simd::{self, SimdTier};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The tiers to differentially test: everything the host supports beyond
/// the scalar reference itself.
fn tiers_under_test() -> Vec<SimdTier> {
    SimdTier::available()
        .into_iter()
        .filter(|&tier| tier != SimdTier::Scalar)
        .collect()
}

fn scalar() -> &'static simd::KernelDispatch {
    simd::kernels_for(SimdTier::Scalar).expect("scalar tier is always available")
}

/// Word-vector lengths covering empty input, sub-threshold rows, the
/// dispatch threshold itself, full SIMD vectors (4/8 words) and ragged
/// remainders beyond them.
const WORD_LENGTHS: [usize; 9] = [0, 1, 3, 4, 5, 8, 11, 16, 33];

fn random_words(len: usize, density: f64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let mut word = 0u64;
            for bit in 0..64 {
                if rng.gen_bool(density) {
                    word |= 1 << bit;
                }
            }
            word
        })
        .collect()
}

/// A masked-kernel bit vector for a row of `len` lanes: `len.div_ceil(64)`
/// words with the tail-zero invariant upheld.
fn random_mask(len: usize, density: f64, seed: u64) -> Vec<u64> {
    let mut bits = random_words(len.div_ceil(64), density, seed);
    if !len.is_multiple_of(64) {
        if let Some(last) = bits.last_mut() {
            *last &= (1u64 << (len % 64)) - 1;
        }
    }
    bits
}

/// Random f32 payload including sign flips, negative zero and denormals —
/// the values whose bit patterns an unfaithful kernel corrupts first.
fn random_f32s(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.gen_range(0..10) {
            0 => -0.0,
            1 => 0.0,
            2 => f32::MIN_POSITIVE / 2.0, // denormal
            3 => -f32::MIN_POSITIVE / 2.0,
            _ => rng.gen_range(-1.0e3_f32..1.0e3),
        })
        .collect()
}

fn bits_of(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn host_tier_coverage_is_logged() {
    let available = SimdTier::available();
    assert_eq!(available.first(), Some(&SimdTier::Scalar));
    for tier in [
        SimdTier::Scalar,
        SimdTier::Neon,
        SimdTier::Avx2,
        SimdTier::Avx512,
    ] {
        if tier.is_available() {
            println!("simd_differential: exercising tier `{}`", tier.label());
            assert!(simd::kernels_for(tier).is_some());
        } else {
            println!(
                "simd_differential: tier `{}` unavailable on this host, skipped",
                tier.label()
            );
            assert!(simd::kernels_for(tier).is_none());
        }
    }
    // The active table is the widest available tier.
    assert_eq!(
        simd::active().tier(),
        *available.last().expect("scalar is always present")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn popcount_matches_scalar_on_every_tier(
        len_index in 0usize..WORD_LENGTHS.len(),
        density in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let words = random_words(WORD_LENGTHS[len_index], density, seed);
        let expected = scalar().popcount(&words);
        for tier in tiers_under_test() {
            let kernels = simd::kernels_for(tier).expect("tier listed as available");
            prop_assert!(
                kernels.popcount(&words) == expected,
                "popcount diverged on tier {}", tier.label()
            );
        }
    }

    #[test]
    fn and_popcount_matches_scalar_on_every_tier(
        len_index in 0usize..WORD_LENGTHS.len(),
        density in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let len = WORD_LENGTHS[len_index];
        let a = random_words(len, density, seed);
        let b = random_words(len, 1.0 - density * 0.5, seed ^ 0xBEEF);
        let expected = scalar().and_popcount(&a, &b);
        for tier in tiers_under_test() {
            let kernels = simd::kernels_for(tier).expect("tier listed as available");
            prop_assert!(
                kernels.and_popcount(&a, &b) == expected,
                "and_popcount diverged on tier {}", tier.label()
            );
        }
    }

    #[test]
    fn add_assign_is_bitwise_identical_on_every_tier(
        len in 0usize..300,
        seed in any::<u64>(),
    ) {
        let src = random_f32s(len, seed);
        let dst = random_f32s(len, seed ^ 0xD15EA5E);
        let mut expected = dst.clone();
        scalar().add_assign(&mut expected, &src);
        for tier in tiers_under_test() {
            let kernels = simd::kernels_for(tier).expect("tier listed as available");
            let mut got = dst.clone();
            kernels.add_assign(&mut got, &src);
            prop_assert!(
                bits_of(&got) == bits_of(&expected),
                "add_assign diverged on tier {}", tier.label()
            );
        }
    }

    #[test]
    fn masked_add_is_bitwise_identical_on_every_tier(
        len in 0usize..300,
        density in 0.0f64..1.0,
        weight_sel in 0usize..4,
        weight_raw in -10.0f32..10.0,
        seed in any::<u64>(),
    ) {
        let weight = match weight_sel {
            0 => 0.25,
            1 => -1.5,
            2 => -0.0,
            _ => weight_raw,
        };
        let bits = random_mask(len, density, seed);
        let dst = random_f32s(len, seed ^ 0xCAFE);
        let mut expected = dst.clone();
        scalar().masked_add(&mut expected, &bits, weight);
        // Scalar blend semantics: unset lanes keep their exact bits.
        for d in 0..len {
            if bits[d / 64] & (1 << (d % 64)) == 0 {
                prop_assert_eq!(expected[d].to_bits(), dst[d].to_bits());
            }
        }
        for tier in tiers_under_test() {
            let kernels = simd::kernels_for(tier).expect("tier listed as available");
            let mut got = dst.clone();
            kernels.masked_add(&mut got, &bits, weight);
            prop_assert!(
                bits_of(&got) == bits_of(&expected),
                "masked_add diverged on tier {}", tier.label()
            );
        }
    }

    #[test]
    fn masked_inc_matches_scalar_on_every_tier(
        len in 0usize..300,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let bits = random_mask(len, density, seed);
        let dst: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF0F0);
            (0..len).map(|_| rng.gen_range(0..1000)).collect()
        };
        let mut expected = dst.clone();
        scalar().masked_inc(&mut expected, &bits);
        for tier in tiers_under_test() {
            let kernels = simd::kernels_for(tier).expect("tier listed as available");
            let mut got = dst.clone();
            kernels.masked_inc(&mut got, &bits);
            prop_assert!(
                got == expected,
                "masked_inc diverged on tier {}", tier.label()
            );
        }
    }

    #[test]
    fn empty_and_all_zero_rows_are_neutral_on_every_tier(
        len_index in 0usize..WORD_LENGTHS.len(),
    ) {
        let zeros = vec![0u64; WORD_LENGTHS[len_index]];
        for tier in SimdTier::available() {
            let kernels = simd::kernels_for(tier).expect("tier listed as available");
            prop_assert_eq!(kernels.popcount(&zeros), 0);
            prop_assert_eq!(kernels.and_popcount(&zeros, &zeros), 0);
            prop_assert_eq!(kernels.popcount(&[]), 0);
            let mut empty_f32: [f32; 0] = [];
            kernels.add_assign(&mut empty_f32, &[]);
            kernels.masked_add(&mut empty_f32, &[], 1.0);
            let mut empty_u32: [u32; 0] = [];
            kernels.masked_inc(&mut empty_u32, &[]);
        }
    }
}
