//! The spike generator (§5.4): merges the partial sums from the dense and
//! sparse cores, updates membrane potentials, and conditionally emits output
//! spikes.

use bishop_memsys::{EnergyModel, MemoryTraffic};

use crate::config::BishopConfig;
use crate::metrics::CoreCost;

/// Analytic model of the spike-generator array (512 parallel LIF lanes).
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeGeneratorModel {
    config: BishopConfig,
}

impl SpikeGeneratorModel {
    /// Creates the model for a hardware configuration.
    pub fn new(config: &BishopConfig) -> Self {
        Self {
            config: config.clone(),
        }
    }

    /// Cost of generating `neuron_updates` output values (`T · N · D_out`
    /// membrane updates) by merging `partial_sum_streams` streams of partial
    /// sums (2 when both the dense and sparse cores contribute, 1 for the
    /// attention path).
    pub fn process(
        &self,
        neuron_updates: u64,
        partial_sum_streams: usize,
        energy: &EnergyModel,
    ) -> CoreCost {
        if neuron_updates == 0 {
            return CoreCost::zero();
        }
        let lanes = self.config.spike_generator_lanes as u64;
        let compute_cycles = neuron_updates.div_ceil(lanes);

        // Sparse-dense addition: one extra accumulate per update per extra
        // stream, then the LIF threshold/update itself.
        let merge_ops = neuron_updates * (partial_sum_streams.saturating_sub(1)) as u64;
        let compute_energy_pj = neuron_updates as f64 * energy.lif_update_pj
            + merge_ops as f64 * energy.accumulate_pj
            + compute_cycles as f64 * lanes as f64 * energy.pe_idle_pj_per_cycle * 0.25;

        // Each partial-sum stream is read from the producing core's output
        // buffer (2 bytes per value); the binary spike outputs are written
        // back to the spike TTB GLB as a packed bitmap.
        let traffic = MemoryTraffic {
            local_read_bytes: neuron_updates * 2 * partial_sum_streams as u64,
            glb_write_bytes: neuron_updates.div_ceil(8),
            ..MemoryTraffic::new()
        };

        CoreCost {
            compute_cycles,
            ops: neuron_updates + merge_ops,
            compute_energy_pj,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SpikeGeneratorModel {
        SpikeGeneratorModel::new(&BishopConfig::default())
    }

    #[test]
    fn zero_updates_cost_nothing() {
        assert_eq!(
            model().process(0, 2, &EnergyModel::bishop_28nm()),
            CoreCost::zero()
        );
    }

    #[test]
    fn cycles_use_all_lanes() {
        let energy = EnergyModel::bishop_28nm();
        assert_eq!(model().process(512, 1, &energy).compute_cycles, 1);
        assert_eq!(model().process(513, 1, &energy).compute_cycles, 2);
        assert_eq!(model().process(5120, 1, &energy).compute_cycles, 10);
    }

    #[test]
    fn merging_two_streams_costs_more_than_one() {
        let energy = EnergyModel::bishop_28nm();
        let one = model().process(1000, 1, &energy);
        let two = model().process(1000, 2, &energy);
        assert!(two.compute_energy_pj > one.compute_energy_pj);
        assert!(two.traffic.local_read_bytes > one.traffic.local_read_bytes);
        assert_eq!(one.traffic.glb_write_bytes, two.traffic.glb_write_bytes);
    }

    #[test]
    fn output_bitmap_is_one_bit_per_neuron() {
        let energy = EnergyModel::bishop_28nm();
        let cost = model().process(8000, 2, &energy);
        assert_eq!(cost.traffic.glb_write_bytes, 1000);
    }
}
