//! The TT-Bundle attention core (§5.5): a reconfigurable 512-PE systolic
//! array that computes spiking self-attention with AND-accumulate (mode 1)
//! and select-accumulate (mode 2) units under an S-stationary dataflow.

use bishop_bundle::EcpResult;
use bishop_memsys::{EnergyModel, MemoryTraffic};
use bishop_model::AttentionWorkload;

use crate::config::BishopConfig;
use crate::metrics::CoreCost;

/// Analytic model of the attention core.
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionCoreModel {
    config: BishopConfig,
}

/// Cost of one attention layer split by mode, plus the retention fractions
/// the cost was computed with.
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionCost {
    /// Mode-1 (score computation) + mode-2 (output computation) cost.
    pub cost: CoreCost,
    /// Fraction of Q bundle rows processed (1.0 without ECP).
    pub q_fraction: f64,
    /// Fraction of K bundle rows processed (1.0 without ECP).
    pub k_fraction: f64,
    /// AND-accumulate operations of mode 1.
    pub score_ops: u64,
    /// Select-accumulate operations of mode 2.
    pub output_ops: u64,
}

impl AttentionCoreModel {
    /// Creates the model for a hardware configuration.
    pub fn new(config: &BishopConfig) -> Self {
        Self {
            config: config.clone(),
        }
    }

    /// Cost of executing one spiking self-attention layer, optionally after
    /// ECP pruning (whose retention fractions shrink every term).
    pub fn process(
        &self,
        layer: &AttentionWorkload,
        ecp: Option<&EcpResult>,
        energy: &EnergyModel,
    ) -> AttentionCost {
        let shape = layer.shape();
        let (q_fraction, k_fraction) = match ecp {
            Some(result) => (result.q_retention(), result.k_retention()),
            None => (1.0, 1.0),
        };

        // Dense op counts: T · N² · D for S = Q·Kᵀ and the same for Y = S·V;
        // ECP scales rows by the Q retention and columns/V rows by the K
        // retention.
        let dense_ops = layer.score_ops() as f64;
        let score_ops = (dense_ops * q_fraction * k_fraction).ceil() as u64;
        let output_ops = (dense_ops * q_fraction * k_fraction).ceil() as u64;

        let peak = self.config.attention_peak_ops_per_cycle();
        let compute_cycles = ((score_ops + output_ops) as f64 / peak).ceil() as u64;

        let compute_energy_pj = score_ops as f64 * energy.aac_pj()
            + output_ops as f64 * energy.sac_pj()
            + compute_cycles as f64
                * self.config.attention_pes as f64
                * energy.pe_idle_pj_per_cycle;

        // Operand traffic. Q/K/V are binary bitmaps; thanks to ECP only the
        // retained bundle rows are ever loaded from the GLBs (and DRAM). The
        // score matrix S stays in the PE registers (S-stationary), so it
        // never touches the memory hierarchy; the integer outputs Y are
        // handed to the spike generator through the Y TT-bundle buffers.
        let bitmap_bytes = (shape.len() as u64).div_ceil(8);
        let q_bytes = (bitmap_bytes as f64 * q_fraction).ceil() as u64;
        let k_bytes = (bitmap_bytes as f64 * k_fraction).ceil() as u64;
        let v_bytes = k_bytes;
        // K and V are re-streamed once per wave of Q bundle columns mapped
        // onto the array (inter-Q-bundle reuse limits this to a small
        // factor).
        let q_token_bundles = shape.tokens.div_ceil(self.config.bundle.tokens) as f64 * q_fraction;
        let k_reuse_waves = (q_token_bundles / self.config.dense_bundle_lanes as f64)
            .ceil()
            .max(1.0) as u64;
        let score_bytes = (layer.score_bits as u64).div_ceil(8);
        let y_bytes =
            (shape.len() as u64 as f64 * q_fraction).ceil() as u64 * score_bytes.max(1) * 2;

        let traffic = MemoryTraffic {
            dram_read_bytes: q_bytes + k_bytes + v_bytes,
            glb_read_bytes: q_bytes + (k_bytes + v_bytes) * k_reuse_waves,
            glb_write_bytes: (shape.len() as u64).div_ceil(8),
            local_read_bytes: q_bytes + k_bytes + v_bytes,
            local_write_bytes: y_bytes,
            register_bytes: (score_ops + output_ops).div_ceil(16),
            ..MemoryTraffic::new()
        };

        AttentionCost {
            cost: CoreCost {
                compute_cycles,
                ops: score_ops + output_ops,
                compute_energy_pj,
                traffic,
            },
            q_fraction,
            k_fraction,
            score_ops,
            output_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_bundle::{ecp, BundleShape, EcpConfig};
    use bishop_spiketensor::{SpikeTraceGenerator, TensorShape, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attention_workload(q_density: f64, k_density: f64) -> AttentionWorkload {
        let shape = TensorShape::new(4, 32, 64);
        let mut rng = StdRng::seed_from_u64(13);
        let gen = |d: f64, rng: &mut StdRng| {
            SpikeTraceGenerator::new(TraceProfile::new(d).with_feature_spread(1.0))
                .generate(shape, rng)
        };
        AttentionWorkload {
            block: 0,
            label: "block0.ATN".to_string(),
            q: gen(q_density, &mut rng),
            k: gen(k_density, &mut rng),
            v: gen(0.2, &mut rng),
            heads: 4,
            score_bits: 6,
        }
    }

    fn model() -> AttentionCoreModel {
        AttentionCoreModel::new(&BishopConfig::default())
    }

    #[test]
    fn without_ecp_the_full_dense_work_is_done() {
        let layer = attention_workload(0.1, 0.1);
        let result = model().process(&layer, None, &EnergyModel::bishop_28nm());
        assert_eq!(result.q_fraction, 1.0);
        assert_eq!(result.k_fraction, 1.0);
        assert_eq!(result.score_ops, layer.score_ops());
        assert_eq!(result.cost.ops, layer.dense_ops());
    }

    #[test]
    fn ecp_shrinks_compute_and_traffic() {
        let layer = attention_workload(0.05, 0.03);
        let energy = EnergyModel::bishop_28nm();
        let baseline = model().process(&layer, None, &energy);
        // At these densities a 64-feature bundle row carries ~21 (Q) / ~14 (K)
        // active bundles on average, so the threshold must sit above that for
        // the pruning path to actually remove rows.
        let pruned = ecp::apply(
            &layer.q,
            &layer.k,
            &layer.v,
            EcpConfig::uniform(24, BundleShape::default()),
        );
        let with_ecp = model().process(&layer, Some(&pruned), &energy);
        assert!(with_ecp.cost.ops < baseline.cost.ops);
        assert!(with_ecp.cost.compute_cycles <= baseline.cost.compute_cycles);
        assert!(with_ecp.cost.traffic.dram_read_bytes <= baseline.cost.traffic.dram_read_bytes);
        assert!(with_ecp.cost.compute_energy_pj < baseline.cost.compute_energy_pj);
    }

    #[test]
    fn compute_scales_with_retention_product() {
        let layer = attention_workload(0.08, 0.08);
        let energy = EnergyModel::bishop_28nm();
        let pruned = ecp::apply(
            &layer.q,
            &layer.k,
            &layer.v,
            EcpConfig::uniform(6, BundleShape::default()),
        );
        let with_ecp = model().process(&layer, Some(&pruned), &energy);
        let expected =
            (layer.score_ops() as f64 * pruned.q_retention() * pruned.k_retention()).ceil() as u64;
        assert_eq!(with_ecp.score_ops, expected);
        assert_eq!(with_ecp.output_ops, expected);
    }

    #[test]
    fn cycles_respect_attention_core_throughput() {
        let config = BishopConfig::default();
        let layer = attention_workload(0.2, 0.2);
        let result = model().process(&layer, None, &EnergyModel::bishop_28nm());
        let min_cycles =
            (result.cost.ops as f64 / config.attention_peak_ops_per_cycle()).floor() as u64;
        assert!(result.cost.compute_cycles >= min_cycles);
        assert!(result.cost.compute_cycles <= min_cycles + 2);
    }

    #[test]
    fn scores_never_touch_dram() {
        // S-stationary: score traffic shows up only in registers/local
        // buffers, DRAM traffic is just the binary operands.
        let layer = attention_workload(0.15, 0.15);
        let result = model().process(&layer, None, &EnergyModel::bishop_28nm());
        let bitmap_bytes = (layer.shape().len() as u64).div_ceil(8);
        assert_eq!(result.cost.traffic.dram_read_bytes, 3 * bitmap_bytes);
    }
}
