//! # bishop-core
//!
//! The Bishop heterogeneous spiking-transformer accelerator model — the
//! paper's primary contribution (§5).
//!
//! Bishop processes a spiking transformer layer by layer:
//!
//! * MLP and projection layers are **stratified** per input feature into a
//!   dense part and a sparse part (Alg. 1). The dense part runs on the
//!   **TT-Bundle dense core** (a 512-PE output-stationary systolic array of
//!   select-accumulate units, 32 output features × 16 bundles in flight,
//!   up to 10 spikes per PE per cycle), the sparse part on the **TT-Bundle
//!   sparse core** (a SIGMA-like array of 128 bundle units). The two cores
//!   run concurrently and their partial sums are merged by the **spike
//!   generator** (512 parallel LIF units).
//! * Spiking self-attention layers run on the **TT-Bundle attention core**
//!   (512 reconfigurable PEs): mode 1 computes the integer score matrix
//!   `S = Q·Kᵀ` with AND-accumulate units and an S-stationary dataflow,
//!   mode 2 computes `Y = S·V` with select-accumulate units. Error-
//!   Constrained TTB Pruning removes Q/K bundle rows before any data is
//!   loaded.
//!
//! The simulator is an analytic cycle/energy model in the same spirit as the
//! paper's evaluation infrastructure: per layer it derives compute cycles
//! from the dataflow and PE counts, memory traffic at each hierarchy level
//! from the reuse scheme, overlaps compute with double-buffered memory
//! transfers, and converts events to energy with the 28 nm table from
//! `bishop-memsys`.
//!
//! ```
//! use bishop_core::{BishopConfig, BishopSimulator, SimOptions};
//! use bishop_model::{ModelConfig, ModelWorkload};
//! use bishop_model::workload::SyntheticTraceSpec;
//! use rand::SeedableRng;
//!
//! let config = ModelConfig::new("demo", bishop_model::DatasetKind::Cifar10, 1, 4, 16, 32, 2);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let workload = ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(0.15), &mut rng);
//! let simulator = BishopSimulator::new(BishopConfig::default());
//! let metrics = simulator.simulate(&workload, &SimOptions::default());
//! assert!(metrics.total_latency_seconds() > 0.0);
//! assert!(metrics.total_energy_mj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention_core;
pub mod config;
pub mod dense_core;
pub mod metrics;
pub mod scheduler;
pub mod simulator;
pub mod sparse_core;
pub mod spike_generator;
pub mod stratifier_unit;

pub use attention_core::AttentionCoreModel;
pub use config::{BishopConfig, StratifyPolicy};
pub use dense_core::DenseCoreModel;
pub use metrics::{CoreCost, LayerMetrics, RunMetrics};
pub use simulator::{BishopSimulator, SimOptions};
pub use sparse_core::SparseCoreModel;
pub use spike_generator::SpikeGeneratorModel;
pub use stratifier_unit::StratifierUnit;
