//! Layer-to-core scheduling: maps each workload layer onto the Bishop cores
//! and combines the per-core costs into layer metrics.

use bishop_bundle::{ecp, EcpConfig};
use bishop_memsys::{EnergyModel, MemoryHierarchy, MemoryTraffic};
use bishop_model::{AttentionWorkload, LayerWorkload, ProjectionWorkload};

use crate::attention_core::AttentionCoreModel;
use crate::config::BishopConfig;
use crate::dense_core::DenseCoreModel;
use crate::metrics::{combine_layer, CoreCost, LayerMetrics};
use crate::sparse_core::SparseCoreModel;
use crate::spike_generator::SpikeGeneratorModel;
use crate::stratifier_unit::StratifierUnit;

/// Schedules individual layers onto the heterogeneous cores.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerScheduler {
    config: BishopConfig,
    energy: EnergyModel,
    hierarchy: MemoryHierarchy,
    dense: DenseCoreModel,
    sparse: SparseCoreModel,
    attention: AttentionCoreModel,
    spike_generator: SpikeGeneratorModel,
    stratifier: StratifierUnit,
}

impl LayerScheduler {
    /// Creates a scheduler for the given hardware configuration and models.
    pub fn new(config: BishopConfig, energy: EnergyModel, hierarchy: MemoryHierarchy) -> Self {
        Self {
            dense: DenseCoreModel::new(&config),
            sparse: SparseCoreModel::new(&config),
            attention: AttentionCoreModel::new(&config),
            spike_generator: SpikeGeneratorModel::new(&config),
            stratifier: StratifierUnit::new(&config),
            config,
            energy,
            hierarchy,
        }
    }

    /// The hardware configuration in use.
    pub fn config(&self) -> &BishopConfig {
        &self.config
    }

    /// Memory-side cycles of a traffic record: the DRAM channel and the GLB
    /// ports work concurrently, so the slower of the two is the visible
    /// memory time for a (double-buffered) layer. The weight GLB and the
    /// spike TTB GLBs have independent 512-bit ports, so on-chip streaming
    /// sustains two port-widths per cycle in aggregate.
    pub fn memory_cycles(&self, traffic: &MemoryTraffic) -> u64 {
        let dram = self
            .hierarchy
            .dram
            .transfer_cycles(traffic.dram_bytes(), self.config.clock_hz);
        let glb = self
            .hierarchy
            .spike_glb0
            .access_cycles(traffic.glb_bytes())
            .div_ceil(2);
        dram.max(glb)
    }

    /// Schedules any workload layer, dispatching to the projection or
    /// attention path. `ecp_config` only applies to attention layers.
    ///
    /// This is the reusable per-layer entry point the serving runtime (and
    /// any other multi-tenant driver) uses: a `LayerScheduler` is immutable
    /// after construction, so one instance can be cloned per worker thread
    /// and fed layers from different requests concurrently.
    pub fn schedule_layer(
        &self,
        layer: &LayerWorkload,
        ecp_config: Option<EcpConfig>,
    ) -> LayerMetrics {
        match layer {
            LayerWorkload::Projection(p) => self.schedule_projection(p),
            LayerWorkload::Attention(a) => self.schedule_attention(a, ecp_config),
        }
    }

    /// Schedules an MLP/projection layer across the stratifier, dense core,
    /// sparse core and spike generator.
    pub fn schedule_projection(&self, layer: &ProjectionWorkload) -> LayerMetrics {
        let strat = self.stratifier.stratify(
            &layer.input,
            layer.output_features,
            layer.weight_bits,
            &self.energy,
        );

        let dense_cost = self.dense.process(
            &strat.dense,
            layer.output_features,
            layer.weight_bits,
            &self.energy,
        );
        let sparse_cost = self.sparse.process(
            &strat.sparse,
            layer.output_features,
            layer.weight_bits,
            &self.energy,
        );

        let shape = layer.input.shape();
        let neuron_updates = (shape.timesteps * shape.tokens * layer.output_features) as u64;
        let streams = usize::from(dense_cost.ops > 0) + usize::from(sparse_cost.ops > 0);
        let generator_cost =
            self.spike_generator
                .process(neuron_updates, streams.max(1), &self.energy);

        // Layer-level traffic not attributed to a specific core: the input
        // spike bitmap comes from DRAM once (packed TTBs), and the output
        // spike bitmap of the layer goes back out.
        let io_traffic = MemoryTraffic {
            dram_read_bytes: layer.input.packed_bytes() as u64,
            dram_write_bytes: neuron_updates.div_ceil(8),
            ..MemoryTraffic::new()
        };
        let io_cost = CoreCost {
            traffic: io_traffic,
            ..CoreCost::zero()
        };

        let total = dense_cost
            .add(&sparse_cost)
            .add(&generator_cost)
            .add(&strat.cost)
            .add(&io_cost);

        // The dense and sparse cores run concurrently; the spike generator
        // and the stratifier are (short) serial stages.
        let compute_cycles = dense_cost.compute_cycles.max(sparse_cost.compute_cycles)
            + generator_cost.compute_cycles
            + strat.cost.compute_cycles;
        let memory_cycles = self.memory_cycles(&total.traffic);

        combine_layer(
            layer.label.clone(),
            layer.block,
            layer.kind.group_label(),
            compute_cycles,
            memory_cycles,
            self.config.pipeline_overhead_cycles,
            &total,
            &self.energy,
        )
    }

    /// Schedules a spiking self-attention layer on the attention core,
    /// optionally applying ECP with the given configuration first.
    pub fn schedule_attention(
        &self,
        layer: &AttentionWorkload,
        ecp_config: Option<EcpConfig>,
    ) -> LayerMetrics {
        let ecp_result = ecp_config.map(|cfg| ecp::apply(&layer.q, &layer.k, &layer.v, cfg));
        let attention_cost = self
            .attention
            .process(layer, ecp_result.as_ref(), &self.energy);

        let shape = layer.shape();
        let neuron_updates = (shape.len() as f64 * attention_cost.q_fraction).ceil() as u64;
        let generator_cost = self
            .spike_generator
            .process(neuron_updates, 1, &self.energy);

        let total = attention_cost.cost.add(&generator_cost);
        let compute_cycles = attention_cost.cost.compute_cycles + generator_cost.compute_cycles;
        let memory_cycles = self.memory_cycles(&total.traffic);

        combine_layer(
            layer.label.clone(),
            layer.block,
            "ATN",
            compute_cycles,
            memory_cycles,
            self.config.pipeline_overhead_cycles,
            &total,
            &self.energy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StratifyPolicy;
    use bishop_bundle::BundleShape;
    use bishop_model::workload::SyntheticTraceSpec;
    use bishop_model::{DatasetKind, LayerWorkload, ModelConfig, ModelWorkload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scheduler(config: BishopConfig) -> LayerScheduler {
        LayerScheduler::new(
            config,
            EnergyModel::bishop_28nm(),
            MemoryHierarchy::bishop_default(),
        )
    }

    fn workload(density: f64) -> ModelWorkload {
        let config = ModelConfig::new("sched", DatasetKind::Cifar10, 1, 4, 32, 64, 2);
        let mut rng = StdRng::seed_from_u64(3);
        ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(density), &mut rng)
    }

    fn first_projection(w: &ModelWorkload) -> &ProjectionWorkload {
        w.projection_layers().next().unwrap()
    }

    fn first_attention(w: &ModelWorkload) -> &AttentionWorkload {
        w.attention_layers().next().unwrap()
    }

    #[test]
    fn projection_metrics_are_positive_and_labelled() {
        let w = workload(0.2);
        let metrics = scheduler(BishopConfig::default()).schedule_projection(first_projection(&w));
        assert!(metrics.latency_cycles > 0);
        assert!(metrics.total_energy_pj() > 0.0);
        assert_eq!(metrics.group, "P1");
        assert_eq!(metrics.block, 0);
        assert!(metrics.latency_cycles >= metrics.compute_cycles.max(metrics.memory_cycles));
    }

    #[test]
    fn denser_workloads_cost_more() {
        let sched = scheduler(BishopConfig::default());
        let sparse = sched.schedule_projection(first_projection(&workload(0.05)));
        let dense = sched.schedule_projection(first_projection(&workload(0.4)));
        assert!(dense.compute_cycles > sparse.compute_cycles);
        assert!(dense.total_energy_pj() > sparse.total_energy_pj());
    }

    #[test]
    fn heterogeneous_split_beats_all_dense_on_mixed_workloads() {
        let config = ModelConfig::new("mixed", DatasetKind::ImageNet100, 1, 4, 64, 128, 4);
        let mut rng = StdRng::seed_from_u64(9);
        let spec = SyntheticTraceSpec {
            input_density: 0.2,
            q_density: 0.1,
            k_density: 0.1,
            v_density: 0.2,
            hidden_density: 0.15,
            feature_spread: 2.0,
            silent_fraction: 0.05,
            cluster: (2, 4, 2.5),
        };
        let w = ModelWorkload::synthetic(&config, &spec, &mut rng);
        let layer = first_projection(&w);

        let split = scheduler(
            BishopConfig::default().with_stratify(StratifyPolicy::TargetDenseFraction(0.5)),
        )
        .schedule_projection(layer);
        let all_dense = scheduler(BishopConfig::default().with_stratify(StratifyPolicy::AllDense))
            .schedule_projection(layer);
        assert!(
            split.compute_cycles <= all_dense.compute_cycles,
            "heterogeneous split ({}) should not be slower than all-dense ({})",
            split.compute_cycles,
            all_dense.compute_cycles
        );
    }

    #[test]
    fn attention_with_ecp_is_cheaper() {
        let w = workload(0.08);
        let sched = scheduler(BishopConfig::default());
        let layer = first_attention(&w);
        let baseline = sched.schedule_attention(layer, None);
        let pruned =
            sched.schedule_attention(layer, Some(EcpConfig::uniform(6, BundleShape::default())));
        assert!(pruned.compute_cycles <= baseline.compute_cycles);
        assert!(pruned.total_energy_pj() <= baseline.total_energy_pj());
        assert_eq!(pruned.group, "ATN");
    }

    #[test]
    fn layer_latency_accounts_for_memory_boundness() {
        let w = workload(0.01);
        let sched = scheduler(BishopConfig::default());
        let metrics = sched.schedule_projection(first_projection(&w));
        // With almost no spikes the layer is memory bound: latency tracks the
        // memory cycles, not the (tiny) compute.
        assert!(metrics.memory_cycles >= metrics.compute_cycles);
        assert_eq!(
            metrics.latency_cycles,
            metrics.memory_cycles + sched.config().pipeline_overhead_cycles
        );
    }

    #[test]
    fn every_workload_layer_can_be_scheduled() {
        let w = workload(0.15);
        let sched = scheduler(BishopConfig::default());
        for layer in w.layers() {
            let metrics = match layer {
                LayerWorkload::Projection(p) => sched.schedule_projection(p),
                LayerWorkload::Attention(a) => sched.schedule_attention(a, None),
            };
            assert!(
                metrics.latency_cycles > 0,
                "{} had zero latency",
                layer.label()
            );
        }
    }
}
