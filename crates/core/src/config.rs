//! Hardware configuration of the Bishop accelerator (§6.1 of the paper).

use bishop_bundle::BundleShape;

/// How the stratification threshold `θs` is chosen per layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StratifyPolicy {
    /// Per layer, choose the split that balances the estimated completion
    /// time of the dense and sparse cores (the paper's near-optimal
    /// operating point, §6.5.1).
    Balanced,
    /// Use a fixed threshold (number of active bundles per feature) for every
    /// layer.
    Fixed(usize),
    /// Per layer, pick the threshold that routes approximately this fraction
    /// of the *features* to the dense core. The paper's near-optimal point
    /// balances the work between the two cores (≈ 0.5 for ImageNet-100).
    TargetDenseFraction(f64),
    /// Route everything to the dense core (used for the heterogeneity
    /// ablation in §6.4: this is how a homogeneous PTB-like array behaves).
    AllDense,
    /// Route everything to the sparse core.
    AllSparse,
}

/// Hardware parameters of a Bishop instance.
#[derive(Debug, Clone, PartialEq)]
pub struct BishopConfig {
    /// Core clock frequency in Hz (500 MHz in the paper).
    pub clock_hz: f64,
    /// Number of PEs in the TT-Bundle dense core (512).
    pub dense_pes: usize,
    /// Output features processed in parallel by the dense core (32).
    pub dense_feature_lanes: usize,
    /// TT-bundles processed in parallel by the dense core (16).
    pub dense_bundle_lanes: usize,
    /// Spikes a TTB processing unit handles per cycle (10).
    pub spikes_per_unit_cycle: usize,
    /// Number of parallel TTB units in the sparse core (128).
    pub sparse_units: usize,
    /// Effective operations per sparse unit per cycle (the SIGMA-like
    /// distribution/reduction network sustains multiple reductions per cycle
    /// on irregular operands).
    pub sparse_ops_per_unit_cycle: usize,
    /// Utilisation factor of the sparse core on irregular workloads.
    pub sparse_utilisation: f64,
    /// Number of PEs in the TT-Bundle attention core (512).
    pub attention_pes: usize,
    /// AND/select-accumulate lanes per attention PE (time-point groups).
    pub attention_lanes_per_pe: usize,
    /// Utilisation factor of the attention core.
    pub attention_utilisation: f64,
    /// Utilisation factor of the dense core.
    pub dense_utilisation: f64,
    /// Parallel LIF lanes in the spike generator (512).
    pub spike_generator_lanes: usize,
    /// Pipeline fill / drain overhead charged once per tile wave, in cycles.
    pub pipeline_overhead_cycles: u64,
    /// Token-Time-Bundle shape used for packing, tagging and stratification.
    pub bundle: BundleShape,
    /// Stratification policy.
    pub stratify: StratifyPolicy,
}

impl Default for BishopConfig {
    fn default() -> Self {
        Self {
            clock_hz: 500e6,
            dense_pes: 512,
            dense_feature_lanes: 32,
            dense_bundle_lanes: 16,
            spikes_per_unit_cycle: 10,
            sparse_units: 128,
            sparse_ops_per_unit_cycle: 4,
            sparse_utilisation: 0.60,
            attention_pes: 512,
            attention_lanes_per_pe: 10,
            attention_utilisation: 0.80,
            dense_utilisation: 0.90,
            spike_generator_lanes: 512,
            pipeline_overhead_cycles: 64,
            bundle: BundleShape::default(),
            stratify: StratifyPolicy::Balanced,
        }
    }
}

impl BishopConfig {
    /// The paper's default configuration.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Returns a copy with a different bundle shape (used by the Fig. 16
    /// design-space exploration).
    pub fn with_bundle(mut self, bundle: BundleShape) -> Self {
        self.bundle = bundle;
        self
    }

    /// Returns a copy with a different stratification policy (Fig. 15).
    pub fn with_stratify(mut self, policy: StratifyPolicy) -> Self {
        self.stratify = policy;
        self
    }

    /// Peak select-accumulate throughput of the dense core in ops/cycle.
    pub fn dense_peak_ops_per_cycle(&self) -> f64 {
        (self.dense_pes * self.spikes_per_unit_cycle) as f64 * self.dense_utilisation
    }

    /// Peak throughput of the sparse core in ops/cycle.
    pub fn sparse_peak_ops_per_cycle(&self) -> f64 {
        (self.sparse_units * self.sparse_ops_per_unit_cycle) as f64 * self.sparse_utilisation
    }

    /// Peak AND/select-accumulate throughput of the attention core in
    /// ops/cycle.
    pub fn attention_peak_ops_per_cycle(&self) -> f64 {
        (self.attention_pes * self.attention_lanes_per_pe) as f64 * self.attention_utilisation
    }

    /// Converts a cycle count to seconds at this configuration's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_resources() {
        let c = BishopConfig::default();
        assert_eq!(c.dense_pes, 512);
        assert_eq!(c.attention_pes, 512);
        assert_eq!(c.sparse_units, 128);
        assert_eq!(c.spike_generator_lanes, 512);
        assert_eq!(c.spikes_per_unit_cycle, 10);
        assert_eq!(c.clock_hz, 500e6);
        assert_eq!(c.dense_feature_lanes * c.dense_bundle_lanes, c.dense_pes);
    }

    #[test]
    fn throughput_helpers_scale_with_resources() {
        let c = BishopConfig::default();
        assert!(c.dense_peak_ops_per_cycle() > c.sparse_peak_ops_per_cycle());
        assert!(c.attention_peak_ops_per_cycle() > 1000.0);
        let mut small = c.clone();
        small.dense_pes = 256;
        assert!(small.dense_peak_ops_per_cycle() < c.dense_peak_ops_per_cycle());
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let c = BishopConfig::default();
        assert!((c.cycles_to_seconds(500_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn builders_replace_fields() {
        let c = BishopConfig::default()
            .with_bundle(BundleShape::new(4, 4))
            .with_stratify(StratifyPolicy::Fixed(3));
        assert_eq!(c.bundle, BundleShape::new(4, 4));
        assert_eq!(c.stratify, StratifyPolicy::Fixed(3));
    }
}
