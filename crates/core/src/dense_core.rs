//! The TT-Bundle dense core (§5.4): a 512-PE output-stationary systolic
//! array of select-accumulate units.

use bishop_memsys::{EnergyModel, MemoryTraffic};

use crate::config::BishopConfig;
use crate::metrics::CoreCost;
use crate::stratifier_unit::RoutedSlice;

/// Analytic model of the dense TTB core.
///
/// The core processes the *dense-routed* features of an MLP/projection
/// layer. Work is dispatched at TTB granularity: every **active** bundle of a
/// routed feature is streamed through a PE (up to 10 spike positions per
/// cycle), multiplied against the weight rows of all output features via
/// select-accumulate, with the partial sums held output-stationary in the PE
/// registers. Inactive bundles are skipped entirely — that is the structured
/// sparsity benefit of bundling. Weight rows are fetched once per group of
/// `dense_bundle_lanes` bundles (inter-bundle reuse) and reused for every
/// position inside a bundle (intra-bundle reuse).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseCoreModel {
    config: BishopConfig,
}

impl DenseCoreModel {
    /// Creates the model for a hardware configuration.
    pub fn new(config: &BishopConfig) -> Self {
        Self {
            config: config.clone(),
        }
    }

    /// Cost of processing the dense-routed slice of a projection layer with
    /// `output_features` output columns and `weight_bits`-bit weights.
    pub fn process(
        &self,
        slice: &RoutedSlice,
        output_features: usize,
        weight_bits: usize,
        energy: &EnergyModel,
    ) -> CoreCost {
        if slice.active_bundles == 0 || slice.feature_count == 0 {
            return CoreCost::zero();
        }
        let positions = slice.active_bundles as u64 * slice.bundle_volume as u64;
        let sac_ops = positions * output_features as u64;
        let spike_accumulates = slice.spikes as u64 * output_features as u64;

        let peak = self.config.dense_peak_ops_per_cycle();
        let compute_cycles = (sac_ops as f64 / peak).ceil() as u64;

        // Datapath energy: every streamed position costs a mux select, and
        // only actual spikes trigger the (multi-bit) accumulate.
        let compute_energy_pj = sac_ops as f64 * energy.mux_pj
            + spike_accumulates as f64 * energy.accumulate_pj
            + compute_cycles as f64 * self.config.dense_pes as f64 * energy.pe_idle_pj_per_cycle;

        let weight_bytes_per_row = (output_features * weight_bits).div_ceil(8) as u64;
        let weight_glb_reads = slice.weight_row_fetches as u64 * weight_bytes_per_row;
        // Weight matrix rows of the dense-routed features come from DRAM once
        // per layer (double-buffered into the weight GLB).
        let weight_dram_reads = slice.feature_count as u64 * weight_bytes_per_row;
        // Spike operands: the active bundles are streamed from the spike TTB
        // GLB as packed bitmaps, and broadcast across the PE row.
        let activation_glb_reads = (positions).div_ceil(8);

        let traffic = MemoryTraffic {
            dram_read_bytes: weight_dram_reads,
            glb_read_bytes: weight_glb_reads + activation_glb_reads,
            local_read_bytes: weight_glb_reads,
            register_bytes: sac_ops.div_ceil(8),
            ..MemoryTraffic::new()
        };

        CoreCost {
            compute_cycles,
            ops: sac_ops,
            compute_energy_pj,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(active_bundles: usize, spikes: usize, features: usize) -> RoutedSlice {
        RoutedSlice {
            feature_count: features,
            active_bundles,
            spikes,
            bundle_volume: 8,
            weight_row_fetches: active_bundles.div_ceil(16).max(features),
        }
    }

    fn model() -> DenseCoreModel {
        DenseCoreModel::new(&BishopConfig::default())
    }

    #[test]
    fn empty_slice_costs_nothing() {
        let cost = model().process(&slice(0, 0, 0), 128, 8, &EnergyModel::bishop_28nm());
        assert_eq!(cost, CoreCost::zero());
    }

    #[test]
    fn ops_scale_with_active_bundles_and_output_features() {
        let energy = EnergyModel::bishop_28nm();
        let small = model().process(&slice(10, 40, 16), 64, 8, &energy);
        let more_bundles = model().process(&slice(20, 80, 16), 64, 8, &energy);
        let more_outputs = model().process(&slice(10, 40, 16), 128, 8, &energy);
        assert_eq!(more_bundles.ops, 2 * small.ops);
        assert_eq!(more_outputs.ops, 2 * small.ops);
        assert!(more_bundles.compute_cycles >= small.compute_cycles);
    }

    #[test]
    fn inactive_bundles_are_free() {
        // Two slices with the same active bundles but wildly different
        // feature counts (the extra features being fully silent) cost the
        // same compute.
        let energy = EnergyModel::bishop_28nm();
        let a = model().process(
            &RoutedSlice {
                feature_count: 16,
                active_bundles: 32,
                spikes: 100,
                bundle_volume: 8,
                weight_row_fetches: 32,
            },
            64,
            8,
            &energy,
        );
        let b = model().process(
            &RoutedSlice {
                feature_count: 64,
                active_bundles: 32,
                spikes: 100,
                bundle_volume: 8,
                weight_row_fetches: 32,
            },
            64,
            8,
            &energy,
        );
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.compute_cycles, b.compute_cycles);
        // The silent features still have weight rows resident in DRAM.
        assert!(b.traffic.dram_read_bytes > a.traffic.dram_read_bytes);
    }

    #[test]
    fn cycles_respect_peak_throughput() {
        let config = BishopConfig::default();
        let energy = EnergyModel::bishop_28nm();
        let cost = model().process(&slice(1000, 4000, 64), 256, 8, &energy);
        let min_cycles = (cost.ops as f64 / config.dense_peak_ops_per_cycle()).floor() as u64;
        assert!(cost.compute_cycles >= min_cycles);
        assert!(cost.compute_cycles <= min_cycles + 2);
    }

    #[test]
    fn weight_traffic_uses_bundle_lane_reuse() {
        let energy = EnergyModel::bishop_28nm();
        // 64 active bundles over 4 features, 16 bundle lanes -> each feature's
        // row fetched ceil(16/16)=1 time if evenly spread; the slice encodes
        // the fetch count directly.
        let s = RoutedSlice {
            feature_count: 4,
            active_bundles: 64,
            spikes: 200,
            bundle_volume: 8,
            weight_row_fetches: 4,
        };
        let cost = model().process(&s, 128, 8, &energy);
        assert_eq!(
            cost.traffic.glb_read_bytes,
            4 * 128 + (64u64 * 8).div_ceil(8)
        );
        assert_eq!(cost.traffic.dram_read_bytes, 4 * 128);
    }

    #[test]
    fn narrower_weights_move_fewer_bytes() {
        let energy = EnergyModel::bishop_28nm();
        let wide = model().process(&slice(50, 200, 32), 128, 8, &energy);
        let narrow = model().process(&slice(50, 200, 32), 128, 4, &energy);
        assert!(narrow.traffic.dram_read_bytes < wide.traffic.dram_read_bytes);
        assert_eq!(narrow.ops, wide.ops);
    }

    #[test]
    fn energy_contains_idle_component() {
        let energy = EnergyModel::bishop_28nm();
        let cost = model().process(&slice(10, 10, 8), 32, 8, &energy);
        let pure_ops = cost.ops as f64 * energy.mux_pj + 10.0 * 32.0 * energy.accumulate_pj;
        assert!(cost.compute_energy_pj > pure_ops);
    }
}
