//! End-to-end Bishop simulation of a model workload.

use bishop_bundle::EcpConfig;
use bishop_memsys::{EnergyModel, MemoryHierarchy};
use bishop_model::ModelWorkload;

use crate::config::BishopConfig;
use crate::metrics::RunMetrics;
use crate::scheduler::LayerScheduler;

/// Options controlling one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SimOptions {
    /// When set, Error-Constrained TTB Pruning with this threshold is applied
    /// to every attention layer before it is executed (the bundle shape is
    /// taken from the hardware configuration).
    pub ecp_threshold: Option<u32>,
}

impl SimOptions {
    /// No ECP (plain Bishop).
    pub fn baseline() -> Self {
        Self {
            ecp_threshold: None,
        }
    }

    /// ECP with the given pruning threshold.
    pub fn with_ecp(threshold: u32) -> Self {
        Self {
            ecp_threshold: Some(threshold),
        }
    }
}

/// The Bishop accelerator simulator.
///
/// The simulator owns one [`LayerScheduler`], built once at construction, so
/// repeated `simulate` calls (and clones handed to worker threads — a
/// `BishopSimulator` models one chip instance) do not re-derive the per-core
/// cost models. Cloning is cheap: the scheduler state is a handful of small
/// plain-data tables.
#[derive(Debug, Clone, PartialEq)]
pub struct BishopSimulator {
    scheduler: LayerScheduler,
}

impl BishopSimulator {
    /// Creates a simulator with the default 28 nm energy table and the
    /// paper's memory hierarchy.
    pub fn new(config: BishopConfig) -> Self {
        Self::with_models(
            config,
            EnergyModel::bishop_28nm(),
            MemoryHierarchy::bishop_default(),
        )
    }

    /// Creates a simulator with explicit energy/memory models.
    pub fn with_models(
        config: BishopConfig,
        energy: EnergyModel,
        hierarchy: MemoryHierarchy,
    ) -> Self {
        Self {
            scheduler: LayerScheduler::new(config, energy, hierarchy),
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &BishopConfig {
        self.scheduler.config()
    }

    /// The per-layer scheduler backing this simulator. Exposed so drivers
    /// that manage their own run loop (e.g. the serving runtime) can schedule
    /// individual layers without paying for a fresh scheduler per call.
    pub fn scheduler(&self) -> &LayerScheduler {
        &self.scheduler
    }

    /// The ECP configuration implied by `options` for attention layers under
    /// this simulator's bundle shape.
    pub fn ecp_config_for(&self, options: &SimOptions) -> Option<EcpConfig> {
        options
            .ecp_threshold
            .map(|theta| EcpConfig::uniform(theta, self.config().bundle))
    }

    /// Simulates one inference of `workload` and returns the per-layer and
    /// end-to-end metrics.
    pub fn simulate(&self, workload: &ModelWorkload, options: &SimOptions) -> RunMetrics {
        let name = match options.ecp_threshold {
            Some(theta) => format!("Bishop+ECP(θp={theta})"),
            None => "Bishop".to_string(),
        };
        self.simulate_named(workload, options, name)
    }

    /// Like [`simulate`](Self::simulate) with an explicit run name.
    pub fn simulate_named(
        &self,
        workload: &ModelWorkload,
        options: &SimOptions,
        name: impl Into<String>,
    ) -> RunMetrics {
        let ecp_config = self.ecp_config_for(options);
        let mut run = RunMetrics::new(name, self.config().clock_hz);
        for layer in workload.layers() {
            run.push(self.scheduler.schedule_layer(layer, ecp_config));
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StratifyPolicy;
    use bishop_model::workload::SyntheticTraceSpec;
    use bishop_model::{DatasetKind, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(blocks: usize, density: f64, seed: u64) -> ModelWorkload {
        let config = ModelConfig::new("sim", DatasetKind::Cifar10, blocks, 4, 32, 64, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(density), &mut rng)
    }

    #[test]
    fn simulation_produces_one_metric_per_layer() {
        let w = workload(2, 0.15, 1);
        let run =
            BishopSimulator::new(BishopConfig::default()).simulate(&w, &SimOptions::baseline());
        assert_eq!(run.layers.len(), w.layers().len());
        assert!(run.total_latency_seconds() > 0.0);
        assert!(run.total_energy_mj() > 0.0);
        assert_eq!(run.accelerator, "Bishop");
    }

    #[test]
    fn more_blocks_take_longer() {
        let simulator = BishopSimulator::new(BishopConfig::default());
        let small = simulator.simulate(&workload(1, 0.2, 2), &SimOptions::baseline());
        let large = simulator.simulate(&workload(4, 0.2, 2), &SimOptions::baseline());
        assert!(large.total_cycles() > small.total_cycles());
        assert!(large.total_energy_pj() > small.total_energy_pj());
    }

    #[test]
    fn ecp_helps_attention_heavy_models() {
        let config = ModelConfig::new("attn-heavy", DatasetKind::ImageNet100, 2, 4, 96, 32, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut spec = SyntheticTraceSpec::uniform(0.12);
        spec.q_density = 0.05;
        spec.k_density = 0.04;
        spec.feature_spread = 1.5;
        let w = ModelWorkload::synthetic(&config, &spec, &mut rng);
        let simulator = BishopSimulator::new(BishopConfig::default());
        let baseline = simulator.simulate(&w, &SimOptions::baseline());
        let with_ecp = simulator.simulate(&w, &SimOptions::with_ecp(6));
        assert!(with_ecp.total_cycles() <= baseline.total_cycles());
        assert!(with_ecp.total_energy_pj() <= baseline.total_energy_pj());
        assert!(with_ecp.accelerator.contains("ECP"));
    }

    #[test]
    fn stratification_policy_changes_results() {
        let w = workload(1, 0.2, 7);
        let balanced =
            BishopSimulator::new(BishopConfig::default()).simulate(&w, &SimOptions::baseline());
        let all_dense =
            BishopSimulator::new(BishopConfig::default().with_stratify(StratifyPolicy::AllDense))
                .simulate(&w, &SimOptions::baseline());
        // They must at least differ; the balanced split should not be slower.
        assert!(balanced.total_cycles() <= all_dense.total_cycles());
    }

    #[test]
    fn average_power_is_below_the_synthesized_peak() {
        let w = workload(2, 0.2, 9);
        let run =
            BishopSimulator::new(BishopConfig::default()).simulate(&w, &SimOptions::baseline());
        // 627 mW peak power for the synthesized design; the analytic model
        // should not wildly exceed it (DRAM power excluded from the peak).
        assert!(run.average_power_watts() < 2.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let w = workload(2, 0.15, 11);
        let simulator = BishopSimulator::new(BishopConfig::default());
        let a = simulator.simulate(&w, &SimOptions::baseline());
        let b = simulator.simulate(&w, &SimOptions::baseline());
        assert_eq!(a, b);
    }
}
