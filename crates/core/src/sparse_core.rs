//! The TT-Bundle sparse core (§5.4): a SIGMA-like array of 128 TTB
//! processing units with a flexible distribution/reduction network.

use bishop_memsys::{EnergyModel, MemoryTraffic};

use crate::config::BishopConfig;
use crate::metrics::CoreCost;
use crate::stratifier_unit::RoutedSlice;

/// Analytic model of the sparse TTB core.
///
/// The sparse core receives the features the stratifier classified as
/// low-density. Unlike the dense core, which streams every position of an
/// active bundle, the sparse core's distribution network routes only the
/// *actual spikes* to its reduction trees, so its work is proportional to the
/// non-zero count — at the price of a lower clock-for-clock throughput and a
/// utilisation penalty for irregular operands (captured by
/// `sparse_ops_per_unit_cycle` and `sparse_utilisation` in the
/// configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCoreModel {
    config: BishopConfig,
}

impl SparseCoreModel {
    /// Creates the model for a hardware configuration.
    pub fn new(config: &BishopConfig) -> Self {
        Self {
            config: config.clone(),
        }
    }

    /// Cost of processing the sparse-routed slice of a projection layer.
    pub fn process(
        &self,
        slice: &RoutedSlice,
        output_features: usize,
        weight_bits: usize,
        energy: &EnergyModel,
    ) -> CoreCost {
        if slice.spikes == 0 || slice.feature_count == 0 {
            return CoreCost::zero();
        }
        let accumulate_ops = slice.spikes as u64 * output_features as u64;
        let peak = self.config.sparse_peak_ops_per_cycle();
        let compute_cycles = (accumulate_ops as f64 / peak).ceil() as u64;

        // Each accumulate also pays a distribution-network routing cost
        // (modelled as half a mux) — the price of full irregular-sparsity
        // support.
        let compute_energy_pj = accumulate_ops as f64
            * (energy.accumulate_pj + 0.5 * energy.mux_pj)
            + compute_cycles as f64 * self.config.sparse_units as f64 * energy.pe_idle_pj_per_cycle;

        let weight_bytes_per_row = (output_features * weight_bits).div_ceil(8) as u64;
        // Multi-bit weight reuse happens inside a bundle: the weight row of a
        // feature is fetched once per *active bundle* of that feature and
        // reused for the (clustered) spikes inside it.
        let weight_glb_reads = slice.active_bundles as u64 * weight_bytes_per_row;
        let weight_dram_reads = slice.feature_count as u64 * weight_bytes_per_row;
        // Spike operands arrive in compressed coordinate form: ~2 bytes per
        // spike (bundle-relative coordinate + feature offset).
        let activation_glb_reads = slice.spikes as u64 * 2;

        let traffic = MemoryTraffic {
            dram_read_bytes: weight_dram_reads,
            glb_read_bytes: weight_glb_reads + activation_glb_reads,
            local_read_bytes: weight_glb_reads,
            register_bytes: accumulate_ops.div_ceil(8),
            ..MemoryTraffic::new()
        };

        CoreCost {
            compute_cycles,
            ops: accumulate_ops,
            compute_energy_pj,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_core::DenseCoreModel;

    fn slice(active_bundles: usize, spikes: usize, features: usize) -> RoutedSlice {
        RoutedSlice {
            feature_count: features,
            active_bundles,
            spikes,
            bundle_volume: 8,
            weight_row_fetches: active_bundles,
        }
    }

    fn model() -> SparseCoreModel {
        SparseCoreModel::new(&BishopConfig::default())
    }

    #[test]
    fn empty_slice_costs_nothing() {
        let cost = model().process(&slice(0, 0, 0), 128, 8, &EnergyModel::bishop_28nm());
        assert_eq!(cost, CoreCost::zero());
    }

    #[test]
    fn work_is_proportional_to_spikes_not_bundles() {
        let energy = EnergyModel::bishop_28nm();
        let few_spikes = model().process(&slice(100, 50, 32), 64, 8, &energy);
        let many_spikes = model().process(&slice(100, 200, 32), 64, 8, &energy);
        assert_eq!(many_spikes.ops, 4 * few_spikes.ops);
        // Same bundle count, so the weight GLB traffic is identical.
        assert_eq!(
            many_spikes.traffic.glb_read_bytes - many_spikes.traffic.local_read_bytes - 400,
            few_spikes.traffic.glb_read_bytes - few_spikes.traffic.local_read_bytes - 100
        );
    }

    #[test]
    fn sparse_core_is_more_energy_efficient_on_very_sparse_slices() {
        // The motivation for heterogeneity: a slice with many active but
        // nearly-empty bundles burns less energy on the sparse core, which
        // only touches the actual spikes, than on the dense core, which
        // streams every position of every active bundle.
        let config = BishopConfig::default();
        let energy = EnergyModel::bishop_28nm();
        let sparse_slice = RoutedSlice {
            feature_count: 64,
            active_bundles: 500,
            spikes: 600, // ~1.2 spikes per active bundle of volume 8
            bundle_volume: 8,
            weight_row_fetches: 500,
        };
        let on_sparse = SparseCoreModel::new(&config).process(&sparse_slice, 128, 8, &energy);
        let on_dense = DenseCoreModel::new(&config).process(&sparse_slice, 128, 8, &energy);
        assert!(
            on_sparse.compute_energy_pj < on_dense.compute_energy_pj,
            "sparse core should be cheaper on low-occupancy bundles: {} vs {}",
            on_sparse.compute_energy_pj,
            on_dense.compute_energy_pj
        );
        assert!(on_sparse.ops < on_dense.ops);
    }

    #[test]
    fn dense_core_beats_sparse_core_on_dense_slices() {
        let config = BishopConfig::default();
        let energy = EnergyModel::bishop_28nm();
        let dense_slice = RoutedSlice {
            feature_count: 64,
            active_bundles: 500,
            spikes: 500 * 7, // ~7 of 8 positions firing
            bundle_volume: 8,
            weight_row_fetches: 500_usize.div_ceil(16),
        };
        let on_sparse = SparseCoreModel::new(&config).process(&dense_slice, 128, 8, &energy);
        let on_dense = DenseCoreModel::new(&config).process(&dense_slice, 128, 8, &energy);
        assert!(
            on_dense.compute_cycles < on_sparse.compute_cycles,
            "dense core should win on high-occupancy bundles: {} vs {}",
            on_dense.compute_cycles,
            on_sparse.compute_cycles
        );
    }

    #[test]
    fn cycles_respect_peak_throughput() {
        let config = BishopConfig::default();
        let energy = EnergyModel::bishop_28nm();
        let cost = model().process(&slice(100, 5000, 64), 128, 8, &energy);
        let min_cycles = (cost.ops as f64 / config.sparse_peak_ops_per_cycle()).floor() as u64;
        assert!(cost.compute_cycles >= min_cycles);
    }

    #[test]
    fn energy_scales_with_work() {
        let energy = EnergyModel::bishop_28nm();
        let small = model().process(&slice(10, 100, 8), 64, 8, &energy);
        let large = model().process(&slice(10, 1000, 8), 64, 8, &energy);
        assert!(large.compute_energy_pj > small.compute_energy_pj);
    }
}
