//! The hardware stratifier: routes each input feature of an MLP/projection
//! layer to the dense or the sparse TT-Bundle core (§5.3, Alg. 1).

use bishop_bundle::{BundleShape, StratifiedWorkload, Stratifier, TtbTags};
use bishop_memsys::{EnergyModel, MemoryTraffic};
use bishop_spiketensor::SpikeTensor;

use crate::config::{BishopConfig, StratifyPolicy};
use crate::metrics::CoreCost;

/// Aggregate description of the part of a layer's workload routed to one
/// core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoutedSlice {
    /// Number of input features routed to this core.
    pub feature_count: usize,
    /// Number of active TTBs among those features.
    pub active_bundles: usize,
    /// Number of spikes among those features.
    pub spikes: usize,
    /// Bundle volume (`BSt · BSn`) used for packing.
    pub bundle_volume: usize,
    /// Sum over routed features of `ceil(active_bundles(d) / bundle_lanes)` —
    /// the number of times each feature's weight row must be streamed from
    /// the weight GLB given `bundle_lanes` bundles share a fetched row.
    pub weight_row_fetches: usize,
}

/// Result of stratifying one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct StratifiedLayer {
    /// The feature partition.
    pub split: StratifiedWorkload,
    /// Aggregates of the dense-routed part.
    pub dense: RoutedSlice,
    /// Aggregates of the sparse-routed part.
    pub sparse: RoutedSlice,
    /// Cost of running the stratifier itself.
    pub cost: CoreCost,
}

/// The stratifier unit model.
#[derive(Debug, Clone, PartialEq)]
pub struct StratifierUnit {
    config: BishopConfig,
    bundle: BundleShape,
    policy: StratifyPolicy,
    bundle_lanes: usize,
}

impl StratifierUnit {
    /// Creates a stratifier from the accelerator configuration.
    pub fn new(config: &BishopConfig) -> Self {
        Self {
            bundle: config.bundle,
            policy: config.stratify,
            bundle_lanes: config.dense_bundle_lanes,
            config: config.clone(),
        }
    }

    /// The active stratification policy.
    pub fn policy(&self) -> StratifyPolicy {
        self.policy
    }

    /// For the [`StratifyPolicy::Balanced`] policy: picks the stratification
    /// threshold whose split minimises the larger of the two cores' estimated
    /// completion times. The estimate covers both compute throughput and
    /// weight-streaming bandwidth (the sparse core re-fetches a feature's
    /// weight row once per active bundle, the dense core once per group of
    /// `dense_bundle_lanes` bundles), so workloads with no genuinely sparse
    /// features are simply kept on the dense core.
    fn balanced_threshold(
        &self,
        tags: &TtbTags,
        spikes_per_feature: &[usize],
        output_features: usize,
        weight_bits: usize,
    ) -> usize {
        let active_per_feature = tags.active_per_feature();
        let volume = self.bundle.volume() as f64;
        let dense_peak = self.config.dense_peak_ops_per_cycle();
        let sparse_peak = self.config.sparse_peak_ops_per_cycle();
        let row_bytes = (output_features * weight_bits).div_ceil(8) as f64;
        // One 512-bit GLB port per core.
        let port_bytes_per_cycle = 64.0;

        // Candidate thresholds are the distinct active-bundle counts; a
        // feature is dense when its count exceeds the threshold.
        let mut candidates: Vec<usize> = active_per_feature.clone();
        candidates.push(0);
        candidates.sort_unstable();
        candidates.dedup();

        let mut best_threshold = 0usize;
        let mut best_time = f64::INFINITY;
        for &threshold in &candidates {
            let mut dense_positions = 0.0;
            let mut dense_row_fetches = 0.0;
            let mut sparse_spikes = 0.0;
            let mut sparse_row_fetches = 0.0;
            for d in 0..active_per_feature.len() {
                if active_per_feature[d] > threshold {
                    dense_positions += active_per_feature[d] as f64 * volume;
                    dense_row_fetches += active_per_feature[d].div_ceil(self.bundle_lanes) as f64;
                } else {
                    sparse_spikes += spikes_per_feature[d] as f64;
                    sparse_row_fetches += active_per_feature[d] as f64;
                }
            }
            let dense_time = (dense_positions * output_features as f64 / dense_peak)
                .max(dense_row_fetches * row_bytes / port_bytes_per_cycle);
            let sparse_time = (sparse_spikes * output_features as f64 / sparse_peak)
                .max(sparse_row_fetches * row_bytes / port_bytes_per_cycle);
            let time = dense_time.max(sparse_time);
            if time < best_time {
                best_time = time;
                best_threshold = threshold;
            }
        }
        best_threshold
    }

    /// Stratifies one layer's input activations for a projection into
    /// `output_features` columns of `weight_bits`-bit weights.
    pub fn stratify(
        &self,
        input: &SpikeTensor,
        output_features: usize,
        weight_bits: usize,
        energy: &EnergyModel,
    ) -> StratifiedLayer {
        let tags = TtbTags::from_tensor(input, self.bundle);
        let features = input.shape().features;

        let split = match self.policy {
            StratifyPolicy::Balanced => {
                let threshold = self.balanced_threshold(
                    &tags,
                    &input.per_feature_counts(),
                    output_features,
                    weight_bits,
                );
                Stratifier::new(threshold).stratify_tags(input, &tags)
            }
            StratifyPolicy::Fixed(threshold) => {
                Stratifier::new(threshold).stratify_tags(input, &tags)
            }
            StratifyPolicy::TargetDenseFraction(fraction) => {
                let threshold =
                    Stratifier::threshold_for_dense_fraction(input, self.bundle, fraction);
                Stratifier::new(threshold).stratify_tags(input, &tags)
            }
            StratifyPolicy::AllDense => {
                // Threshold that nothing exceeds is impossible; instead use a
                // stratifier with threshold 0 and then force every feature
                // into the dense list (a feature with zero active bundles
                // contributes no work either way).
                let mut split = Stratifier::new(0).stratify_tags(input, &tags);
                let sparse = std::mem::take(&mut split.sparse_features);
                for d in sparse {
                    split.dense_features.push(d);
                }
                split.dense_features.sort_unstable();
                split.dense_active_bundles += split.sparse_active_bundles;
                split.dense_spikes += split.sparse_spikes;
                split.sparse_active_bundles = 0;
                split.sparse_spikes = 0;
                split
            }
            StratifyPolicy::AllSparse => {
                let mut split = Stratifier::new(usize::MAX).stratify_tags(input, &tags);
                debug_assert!(split.dense_features.is_empty());
                split.sparse_features.sort_unstable();
                split
            }
        };

        let active_per_feature = tags.active_per_feature();
        let slice = |feature_list: &[usize], active: usize, spikes: usize| RoutedSlice {
            feature_count: feature_list.len(),
            active_bundles: active,
            spikes,
            bundle_volume: self.bundle.volume(),
            weight_row_fetches: feature_list
                .iter()
                .map(|&d| active_per_feature[d].div_ceil(self.bundle_lanes))
                .sum(),
        };
        let dense = slice(
            &split.dense_features,
            split.dense_active_bundles,
            split.dense_spikes,
        );
        let sparse = slice(
            &split.sparse_features,
            split.sparse_active_bundles,
            split.sparse_spikes,
        );

        // Stratifier hardware cost: it scans the per-feature active-bundle
        // counters (one small counter per feature) and performs one compare
        // per feature; the tag counters themselves are produced for free as a
        // by-product of writing the spike TTBs into the GLB.
        let cost = CoreCost {
            compute_cycles: (features as u64).div_ceil(64),
            ops: features as u64,
            compute_energy_pj: features as f64 * energy.accumulate_pj,
            traffic: MemoryTraffic {
                local_read_bytes: (tags.total_bundles() as u64) / 4,
                ..MemoryTraffic::new()
            },
        };

        StratifiedLayer {
            split,
            dense,
            sparse,
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_spiketensor::{SpikeTraceGenerator, TensorShape, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input() -> SpikeTensor {
        let mut rng = StdRng::seed_from_u64(5);
        SpikeTraceGenerator::new(TraceProfile::new(0.15).with_feature_spread(2.0))
            .generate(TensorShape::new(8, 32, 64), &mut rng)
    }

    fn unit(policy: StratifyPolicy) -> StratifierUnit {
        StratifierUnit::new(&BishopConfig::default().with_stratify(policy))
    }

    #[test]
    fn work_is_conserved_across_the_split() {
        let input = input();
        let energy = EnergyModel::bishop_28nm();
        for policy in [
            StratifyPolicy::Balanced,
            StratifyPolicy::Fixed(3),
            StratifyPolicy::TargetDenseFraction(0.5),
            StratifyPolicy::AllDense,
            StratifyPolicy::AllSparse,
        ] {
            let result = unit(policy).stratify(&input, 128, 8, &energy);
            assert_eq!(
                result.dense.spikes + result.sparse.spikes,
                input.count_ones(),
                "{policy:?} lost spikes"
            );
            assert_eq!(
                result.dense.feature_count + result.sparse.feature_count,
                input.shape().features
            );
            assert!(result.split.is_partition(input.shape().features));
        }
    }

    #[test]
    fn all_dense_routes_everything_to_the_dense_core() {
        let input = input();
        let result =
            unit(StratifyPolicy::AllDense).stratify(&input, 128, 8, &EnergyModel::bishop_28nm());
        assert_eq!(result.sparse.spikes, 0);
        assert_eq!(result.sparse.feature_count, 0);
        assert_eq!(result.dense.spikes, input.count_ones());
    }

    #[test]
    fn all_sparse_routes_everything_to_the_sparse_core() {
        let input = input();
        let result =
            unit(StratifyPolicy::AllSparse).stratify(&input, 128, 8, &EnergyModel::bishop_28nm());
        assert_eq!(result.dense.spikes, 0);
        assert_eq!(result.sparse.spikes, input.count_ones());
    }

    #[test]
    fn target_fraction_routes_roughly_that_many_features_dense() {
        let input = input();
        let result = unit(StratifyPolicy::TargetDenseFraction(0.5)).stratify(
            &input,
            128,
            8,
            &EnergyModel::bishop_28nm(),
        );
        let fraction = result.split.dense_feature_fraction();
        assert!((fraction - 0.5).abs() < 0.3, "got {fraction}");
        // Dense-routed features are the busy ones, so they carry the majority
        // of the spikes even when they are only half the features.
        assert!(result.dense.spikes >= result.sparse.spikes);
    }

    #[test]
    fn weight_row_fetches_reflect_bundle_lane_sharing() {
        let input = SpikeTensor::ones(TensorShape::new(8, 32, 4));
        let result =
            unit(StratifyPolicy::AllDense).stratify(&input, 128, 8, &EnergyModel::bishop_28nm());
        // Every feature has 4x8 = 32 active bundles; with 16 bundle lanes the
        // weight row is fetched twice per feature.
        assert_eq!(result.dense.weight_row_fetches, 4 * 2);
    }

    #[test]
    fn stratifier_cost_is_small() {
        let input = input();
        let result =
            unit(StratifyPolicy::Fixed(2)).stratify(&input, 128, 8, &EnergyModel::bishop_28nm());
        assert!(result.cost.compute_cycles < 10);
        assert!(result.cost.compute_energy_pj < 100.0);
    }
}
