//! The trace retention store: a fixed-size ring of recent traces plus a
//! slowest-N tier, so a burst of fast requests cannot evict the one slow
//! outlier you are debugging.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::trace::FinishedTrace;

#[derive(Debug, Default)]
struct StoreInner {
    recent: VecDeque<Arc<FinishedTrace>>,
    /// Kept sorted by `total_seconds`, slowest first.
    slowest: Vec<Arc<FinishedTrace>>,
}

/// Bounded retention of finished traces, served on `GET /v1/debug/traces`.
#[derive(Debug)]
pub struct TraceStore {
    recent_capacity: usize,
    slowest_capacity: usize,
    inner: Mutex<StoreInner>,
}

impl TraceStore {
    /// Creates a store retaining the last `recent_capacity` traces plus the
    /// `slowest_capacity` slowest ever seen.
    pub fn new(recent_capacity: usize, slowest_capacity: usize) -> Self {
        Self {
            recent_capacity: recent_capacity.max(1),
            slowest_capacity,
            inner: Mutex::new(StoreInner::default()),
        }
    }

    /// Retains one finished trace (evicting the oldest recent entry and the
    /// fastest slowest-tier entry as needed).
    pub fn push(&self, trace: Arc<FinishedTrace>) {
        let mut inner = self.inner.lock().expect("trace store lock");
        inner.recent.push_back(Arc::clone(&trace));
        while inner.recent.len() > self.recent_capacity {
            inner.recent.pop_front();
        }
        if self.slowest_capacity > 0 {
            let position = inner
                .slowest
                .partition_point(|t| t.total_seconds >= trace.total_seconds);
            if position < self.slowest_capacity {
                inner.slowest.insert(position, trace);
                inner.slowest.truncate(self.slowest_capacity);
            }
        }
    }

    /// The retained recent traces, oldest first.
    pub fn recent(&self) -> Vec<Arc<FinishedTrace>> {
        self.inner
            .lock()
            .expect("trace store lock")
            .recent
            .iter()
            .cloned()
            .collect()
    }

    /// The slowest-N tier, slowest first.
    pub fn slowest(&self) -> Vec<Arc<FinishedTrace>> {
        self.inner.lock().expect("trace store lock").slowest.clone()
    }

    /// Looks a trace up by request id, in either tier (most recent match
    /// wins when ids were reused across gateway restarts).
    pub fn find(&self, request_id: u64) -> Option<Arc<FinishedTrace>> {
        let inner = self.inner.lock().expect("trace store lock");
        inner
            .recent
            .iter()
            .rev()
            .find(|t| t.snapshot.request_id == request_id)
            .or_else(|| {
                inner
                    .slowest
                    .iter()
                    .find(|t| t.snapshot.request_id == request_id)
            })
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSnapshot;

    fn finished(request_id: u64, total_seconds: f64) -> Arc<FinishedTrace> {
        Arc::new(FinishedTrace {
            snapshot: TraceSnapshot {
                request_id,
                model: None,
                engine: None,
                session: None,
                batch_id: None,
                stamps: Vec::new(),
                router: None,
                retries: 0,
            },
            total_seconds,
            status: 200,
            error_code: None,
        })
    }

    #[test]
    fn ring_evicts_oldest_but_slowest_tier_survives() {
        let store = TraceStore::new(4, 2);
        store.push(finished(0, 9.0)); // the slow outlier
        for id in 1..20 {
            store.push(finished(id, 0.001));
        }
        // The ring only holds the last four fast requests…
        let recent: Vec<u64> = store
            .recent()
            .iter()
            .map(|t| t.snapshot.request_id)
            .collect();
        assert_eq!(recent, [16, 17, 18, 19]);
        // …but the slow outlier is still retained and findable.
        let slowest = store.slowest();
        assert_eq!(slowest[0].snapshot.request_id, 0);
        assert_eq!(slowest.len(), 2);
        assert!(store.find(0).is_some());
        assert!(store.find(19).is_some());
        assert!(store.find(5).is_none(), "evicted fast trace is gone");
    }

    #[test]
    fn slowest_tier_keeps_the_n_worst_in_order() {
        let store = TraceStore::new(2, 3);
        for (id, total) in [(1, 0.5), (2, 3.0), (3, 1.0), (4, 2.0), (5, 0.1)] {
            store.push(finished(id, total));
        }
        let totals: Vec<f64> = store.slowest().iter().map(|t| t.total_seconds).collect();
        assert_eq!(totals, [3.0, 2.0, 1.0]);
    }
}
