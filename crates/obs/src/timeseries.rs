//! A multi-resolution in-memory time-series store: fixed rings per series
//! at 1 s / 10 s / 60 s rollups, so a scrape or an SLO evaluation can
//! answer "what did queue depth, shed rate or native p95 do over the last
//! five minutes" without any external metrics system.
//!
//! The store is deliberately off the request hot path: only the background
//! sampler writes (a handful of series every tick) and only HTTP reads, so
//! one mutex over the series map is enough — recording never contends with
//! request traffic. Memory is bounded by construction: every series owns
//! exactly `Σ resolution.slots` ring slots, allocated once.
//!
//! Two series kinds cover everything the sampler feeds:
//!
//! * **Gauges** (queue depth, drain rate, stage quantiles) aggregate each
//!   bucket's samples as count/sum/min/max, so both spikes and means
//!   survive the rollup.
//! * **Counters** (requests completed, sheds, batches) are recorded as the
//!   *cumulative* value each tick; the store keeps the per-bucket delta and
//!   reports it as a rate. A cumulative value that moves backwards is
//!   treated as a counter reset, mirroring Prometheus `rate()` semantics.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// One rollup tier: bucket width in whole seconds and ring length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// Width of each bucket, in whole seconds (>= 1).
    pub bucket_seconds: u64,
    /// Ring length: how many buckets the tier retains.
    pub slots: usize,
}

impl Resolution {
    /// The span the tier covers, in seconds.
    pub fn span_seconds(&self) -> f64 {
        (self.bucket_seconds * self.slots as u64) as f64
    }
}

/// The rollup ladder every series is stored at.
#[derive(Debug, Clone)]
pub struct TimeSeriesConfig {
    /// Tiers, finest first. Defaults to 1 s × 120 / 10 s × 90 / 60 s × 60:
    /// two minutes at full resolution, fifteen minutes at 10 s, an hour
    /// at 60 s.
    pub resolutions: Vec<Resolution>,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        Self {
            resolutions: vec![
                Resolution {
                    bucket_seconds: 1,
                    slots: 120,
                },
                Resolution {
                    bucket_seconds: 10,
                    slots: 90,
                },
                Resolution {
                    bucket_seconds: 60,
                    slots: 60,
                },
            ],
        }
    }
}

/// Whether a series holds sampled instantaneous values or a monotone
/// cumulative count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Cumulative count; buckets hold deltas, read back as rates.
    Counter,
    /// Instantaneous value; buckets hold count/sum/min/max.
    Gauge,
}

/// One rollup bucket read back from the store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Bucket start, seconds since the store's epoch.
    pub start_seconds: f64,
    /// Bucket width in seconds.
    pub bucket_seconds: u64,
    /// Samples aggregated into the bucket.
    pub samples: u64,
    /// Sum of the samples (for counters: the increase in the bucket).
    pub sum: f64,
    /// Smallest sample in the bucket (gauges).
    pub min: f64,
    /// Largest sample in the bucket (gauges).
    pub max: f64,
}

impl SeriesPoint {
    /// Mean sample value in the bucket.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }

    /// For counters: the per-second rate over the bucket.
    pub fn rate(&self) -> f64 {
        self.sum / self.bucket_seconds as f64
    }
}

/// A ring slot; `stamp` is the absolute bucket index plus one, so zero
/// means "never written" and a stale slot from a previous lap is detected
/// without ever clearing the ring.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    stamp: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

#[derive(Debug)]
struct Ring {
    resolution: Resolution,
    slots: Vec<Slot>,
}

impl Ring {
    fn new(resolution: Resolution) -> Self {
        Self {
            resolution,
            slots: vec![Slot::default(); resolution.slots.max(1)],
        }
    }

    fn record(&mut self, at_seconds: f64, value: f64) {
        let bucket = (at_seconds.max(0.0) / self.resolution.bucket_seconds as f64) as u64;
        let index = (bucket as usize) % self.slots.len();
        let slot = &mut self.slots[index];
        if slot.stamp != bucket + 1 {
            *slot = Slot {
                stamp: bucket + 1,
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            };
        }
        slot.count += 1;
        slot.sum += value;
        slot.min = slot.min.min(value);
        slot.max = slot.max.max(value);
    }

    /// Buckets overlapping `[at - window, at]`, oldest first.
    fn window(&self, at_seconds: f64, window_seconds: f64) -> Vec<SeriesPoint> {
        let width = self.resolution.bucket_seconds as f64;
        let newest = (at_seconds.max(0.0) / width) as u64;
        let wanted = (window_seconds.max(0.0) / width).ceil() as u64;
        let reachable = (self.slots.len() as u64 - 1).min(wanted);
        let oldest = newest.saturating_sub(reachable);
        (oldest..=newest)
            .filter_map(|bucket| {
                let slot = &self.slots[(bucket as usize) % self.slots.len()];
                (slot.stamp == bucket + 1 && slot.count > 0).then(|| SeriesPoint {
                    start_seconds: (bucket * self.resolution.bucket_seconds) as f64,
                    bucket_seconds: self.resolution.bucket_seconds,
                    samples: slot.count,
                    sum: slot.sum,
                    min: slot.min,
                    max: slot.max,
                })
            })
            .collect()
    }
}

#[derive(Debug)]
struct Series {
    kind: SeriesKind,
    rings: Vec<Ring>,
    /// Last cumulative value seen (counters): the delta baseline.
    last_cumulative: Option<f64>,
}

/// The store: a named map of multi-resolution series plus a monotonic
/// epoch every timestamp is relative to.
#[derive(Debug)]
pub struct TimeSeriesStore {
    epoch: Instant,
    config: TimeSeriesConfig,
    series: Mutex<BTreeMap<String, Series>>,
}

impl Default for TimeSeriesStore {
    fn default() -> Self {
        Self::new(TimeSeriesConfig::default())
    }
}

impl TimeSeriesStore {
    /// Creates an empty store; the clock starts now.
    pub fn new(config: TimeSeriesConfig) -> Self {
        Self {
            epoch: Instant::now(),
            config,
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// Seconds since the store was created — the time base every
    /// `*_at` method and every [`SeriesPoint::start_seconds`] uses.
    pub fn now_seconds(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Records one gauge sample at the current time.
    pub fn record_gauge(&self, name: &str, value: f64) {
        self.record_gauge_at(self.now_seconds(), name, value);
    }

    /// Records one gauge sample at an explicit time (deterministic tests
    /// and the sampler, which stamps one consistent `now` per sweep).
    pub fn record_gauge_at(&self, at_seconds: f64, name: &str, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut series = self.series.lock().expect("time-series lock");
        let entry = self.entry(&mut series, name, SeriesKind::Gauge);
        for ring in &mut entry.rings {
            ring.record(at_seconds, value);
        }
    }

    /// Records a counter's *cumulative* value at the current time.
    pub fn record_counter(&self, name: &str, cumulative: f64) {
        self.record_counter_at(self.now_seconds(), name, cumulative);
    }

    /// Records a counter's cumulative value at an explicit time. The first
    /// observation establishes the baseline; later ones store the delta
    /// (a backwards move is treated as a reset, keeping the whole new
    /// value, like Prometheus `rate()`).
    pub fn record_counter_at(&self, at_seconds: f64, name: &str, cumulative: f64) {
        if !cumulative.is_finite() {
            return;
        }
        let mut series = self.series.lock().expect("time-series lock");
        let entry = self.entry(&mut series, name, SeriesKind::Counter);
        let delta = match entry.last_cumulative.replace(cumulative) {
            Some(previous) if cumulative >= previous => cumulative - previous,
            Some(_) => cumulative,
            // The first observation only establishes the baseline.
            None => return,
        };
        for ring in &mut entry.rings {
            ring.record(at_seconds, delta);
        }
    }

    fn entry<'a>(
        &self,
        series: &'a mut BTreeMap<String, Series>,
        name: &str,
        kind: SeriesKind,
    ) -> &'a mut Series {
        series.entry(name.to_string()).or_insert_with(|| Series {
            kind,
            rings: self
                .config
                .resolutions
                .iter()
                .map(|&r| Ring::new(r))
                .collect(),
            last_cumulative: None,
        })
    }

    /// The kind a series was first recorded as, if it exists.
    pub fn kind(&self, name: &str) -> Option<SeriesKind> {
        self.series
            .lock()
            .expect("time-series lock")
            .get(name)
            .map(|s| s.kind)
    }

    /// Every series name currently in the store.
    pub fn series_names(&self) -> Vec<String> {
        self.series
            .lock()
            .expect("time-series lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Buckets of `name` overlapping `[at - window, at]`, oldest first,
    /// read from the finest tier that spans the window (falling back to
    /// the coarsest). Empty if the series doesn't exist.
    pub fn window_points(
        &self,
        name: &str,
        window_seconds: f64,
        at_seconds: f64,
    ) -> Vec<SeriesPoint> {
        let series = self.series.lock().expect("time-series lock");
        let Some(entry) = series.get(name) else {
            return Vec::new();
        };
        let ring = entry
            .rings
            .iter()
            .find(|ring| ring.resolution.span_seconds() >= window_seconds)
            .or_else(|| entry.rings.last());
        match ring {
            Some(ring) => ring.window(at_seconds, window_seconds),
            None => Vec::new(),
        }
    }

    /// For counters: the total increase over `[at - window, at]` (the sum
    /// of bucket deltas). For gauges this sums raw samples — callers want
    /// [`window_points`](Self::window_points) instead.
    pub fn window_sum(&self, name: &str, window_seconds: f64, at_seconds: f64) -> f64 {
        self.window_points(name, window_seconds, at_seconds)
            .iter()
            .map(|p| p.sum)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_store() -> TimeSeriesStore {
        TimeSeriesStore::new(TimeSeriesConfig {
            resolutions: vec![
                Resolution {
                    bucket_seconds: 1,
                    slots: 8,
                },
                Resolution {
                    bucket_seconds: 10,
                    slots: 6,
                },
            ],
        })
    }

    #[test]
    fn gauges_roll_up_count_sum_min_max_per_bucket() {
        let store = tiny_store();
        store.record_gauge_at(100.2, "queue_depth.native", 4.0);
        store.record_gauge_at(100.7, "queue_depth.native", 10.0);
        store.record_gauge_at(101.1, "queue_depth.native", 1.0);
        let points = store.window_points("queue_depth.native", 2.0, 101.5);
        assert_eq!(points.len(), 2);
        let first = points[0];
        assert_eq!(first.samples, 2);
        assert_eq!(first.min, 4.0);
        assert_eq!(first.max, 10.0);
        assert!((first.mean() - 7.0).abs() < 1e-12);
        assert_eq!(points[1].samples, 1);
        assert_eq!(points[1].min, 1.0);
        assert_eq!(store.kind("queue_depth.native"), Some(SeriesKind::Gauge));
    }

    #[test]
    fn counters_store_deltas_and_read_back_as_rates() {
        let store = tiny_store();
        // First observation is the baseline, not an increase.
        store.record_counter_at(50.5, "requests.ok", 100.0);
        store.record_counter_at(51.5, "requests.ok", 130.0);
        store.record_counter_at(52.5, "requests.ok", 130.0);
        store.record_counter_at(53.5, "requests.ok", 190.0);
        assert!((store.window_sum("requests.ok", 4.0, 53.9) - 90.0).abs() < 1e-9);
        let points = store.window_points("requests.ok", 4.0, 53.9);
        let last = points.last().unwrap();
        assert!((last.rate() - 60.0).abs() < 1e-9);
        assert_eq!(store.kind("requests.ok"), Some(SeriesKind::Counter));
    }

    #[test]
    fn counter_resets_keep_the_new_value_instead_of_going_negative() {
        let store = tiny_store();
        store.record_counter_at(10.5, "restarts", 500.0);
        store.record_counter_at(11.5, "restarts", 7.0); // reset: process restarted
        let sum = store.window_sum("restarts", 3.0, 11.9);
        assert!((sum - 7.0).abs() < 1e-9);
    }

    #[test]
    fn stale_ring_laps_do_not_leak_into_the_window() {
        let store = tiny_store();
        // Fine ring has 8 × 1 s slots; a sample 100 s old occupies the
        // same physical slot as a fresh bucket index would, but its stamp
        // gives it away.
        store.record_gauge_at(4.5, "g", 1.0);
        store.record_gauge_at(104.5, "g", 2.0);
        let points = store.window_points("g", 6.0, 105.0);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].max, 2.0);
        // The coarse ring (10 s × 6 = 60 s span) serves wider windows and
        // has also lapped the old sample away.
        let wide = store.window_points("g", 50.0, 105.0);
        assert_eq!(wide.len(), 1);
    }

    #[test]
    fn window_picks_the_finest_resolution_that_spans_it() {
        let store = tiny_store();
        store.record_gauge_at(20.5, "g", 1.0);
        store.record_gauge_at(21.5, "g", 3.0);
        // 2 s window fits the 1 s ring: two buckets.
        assert_eq!(store.window_points("g", 2.0, 21.9).len(), 2);
        // 30 s window needs the 10 s ring: both samples in one bucket.
        let coarse = store.window_points("g", 30.0, 21.9);
        assert_eq!(coarse.len(), 1);
        assert_eq!(coarse[0].samples, 2);
        assert_eq!(coarse[0].bucket_seconds, 10);
    }

    #[test]
    fn missing_series_and_non_finite_samples_are_inert() {
        let store = tiny_store();
        assert!(store.window_points("nope", 10.0, 100.0).is_empty());
        assert_eq!(store.window_sum("nope", 10.0, 100.0), 0.0);
        assert_eq!(store.kind("nope"), None);
        store.record_gauge_at(1.0, "g", f64::NAN);
        store.record_gauge_at(1.0, "g", f64::INFINITY);
        assert!(store.series_names().is_empty());
    }
}
