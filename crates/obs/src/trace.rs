//! Per-request trace contexts: a request id plus a monotonic stage clock.
//!
//! A [`TraceContext`] is allocated once per request at the edge (HTTP
//! accept) and carried — as an `Arc` — on the request through admission,
//! the domain batcher and the worker. Each layer calls
//! [`TraceContext::stamp`] when it hands the request onward; the span of a
//! stage is the interval since the *previous* stamp, so the recorded spans
//! are monotone and non-overlapping by construction: no layer can produce
//! a stage that starts before the previous one ended, no matter how its
//! clock reads race.

use std::sync::Mutex;
use std::time::Instant;

use crate::router::RouterDecision;

/// The pipeline stages a request passes through, in path order.
///
/// Not every request visits every stage: a shed request stops at
/// [`Stage::Admission`] (or [`Stage::Router`] for `"auto"` requests), and
/// the response-write span exists only for requests served over HTTP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// HTTP read + JSON decode + catalog/engine resolution.
    Parse,
    /// Deadline-aware `"auto"` engine selection (auto requests only).
    Router,
    /// Admission control: queue-depth and deadline checks, backlog
    /// accounting, the channel send into the scheduling domain.
    Admission,
    /// Waiting in the domain's bounded channel for the batcher thread.
    QueueWait,
    /// Waiting in the batch former for the batch to close (size, timeout
    /// or flush) and be dispatched to a worker.
    BatchFormation,
    /// Worker-side engine execution of the batch the request rode in.
    EngineExecute,
    /// Writing streamed per-step progress chunks to the client (streamed
    /// requests only; spans the whole chunked event phase).
    StreamWrite,
    /// Serializing and writing the HTTP response.
    ResponseWrite,
}

impl Stage {
    /// The stable label used on metrics and in trace JSON.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Router => "router",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::BatchFormation => "batch_formation",
            Stage::EngineExecute => "engine_execute",
            Stage::StreamWrite => "stream_write",
            Stage::ResponseWrite => "response_write",
        }
    }

    /// Every stage, in path order (the metric label universe).
    pub fn all() -> [Stage; 8] {
        [
            Stage::Parse,
            Stage::Router,
            Stage::Admission,
            Stage::QueueWait,
            Stage::BatchFormation,
            Stage::EngineExecute,
            Stage::StreamWrite,
            Stage::ResponseWrite,
        ]
    }
}

/// One recorded stage span, in seconds since the trace started.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageStamp {
    /// Which stage the span covers.
    pub stage: Stage,
    /// Span start, seconds since the trace was allocated.
    pub start_seconds: f64,
    /// Span end, seconds since the trace was allocated.
    pub end_seconds: f64,
}

impl StageStamp {
    /// The span's duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.end_seconds - self.start_seconds
    }
}

#[derive(Debug, Default)]
struct TraceInner {
    model: Option<String>,
    engine: Option<String>,
    session: Option<String>,
    batch_id: Option<u64>,
    stamps: Vec<StageStamp>,
    /// End offset of the last recorded stamp: the start of the next one.
    last_offset: f64,
    router: Option<RouterDecision>,
    retries: u32,
}

/// The per-request trace: a gateway-assigned request id, the instant the
/// request was accepted, and the stage spans recorded along the path.
///
/// Shared as an `Arc` between the connection thread and the runtime's
/// batcher/worker threads; all mutation goes through one short-lived
/// mutex (a handful of lock/unlock pairs per request).
#[derive(Debug)]
pub struct TraceContext {
    request_id: u64,
    started: Instant,
    inner: Mutex<TraceInner>,
}

impl TraceContext {
    /// Starts a trace for one request; the stage clock starts now.
    pub fn new(request_id: u64) -> Self {
        Self {
            request_id,
            started: Instant::now(),
            inner: Mutex::new(TraceInner::default()),
        }
    }

    /// The gateway-assigned request id this trace follows.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Seconds since the trace was allocated.
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Records `stage` as the span from the previous stamp's end to now.
    pub fn stamp(&self, stage: Stage) {
        let now = self.elapsed_seconds();
        let mut inner = self.inner.lock().expect("trace lock");
        // The clock only moves forward, but two racing stamps could read
        // `now` before either appends; clamp so spans stay non-negative
        // and non-overlapping.
        let start = inner.last_offset;
        let end = now.max(start);
        inner.stamps.push(StageStamp {
            stage,
            start_seconds: start,
            end_seconds: end,
        });
        inner.last_offset = end;
    }

    /// Records which catalogued model the request resolved to.
    pub fn set_model(&self, model: &str) {
        self.inner.lock().expect("trace lock").model = Some(model.to_string());
    }

    /// Records the concrete engine the request was routed to.
    pub fn set_engine(&self, engine: &str) {
        self.inner.lock().expect("trace lock").engine = Some(engine.to_string());
    }

    /// Records the wire-form session id the request continued (stateful
    /// requests only) — the `?session=` filter key of the trace listing.
    pub fn set_session(&self, session: &str) {
        self.inner.lock().expect("trace lock").session = Some(session.to_string());
    }

    /// Records the id of the batch the request rode in — the *batch span
    /// id* shared by every batch-mate.
    pub fn set_batch_id(&self, batch_id: u64) {
        self.inner.lock().expect("trace lock").batch_id = Some(batch_id);
    }

    /// Attaches the dispatcher's routing decision (auto requests only).
    pub fn set_router(&self, decision: RouterDecision) {
        self.inner.lock().expect("trace lock").router = Some(decision);
    }

    /// Records how many *extra* execution attempts the request's batch
    /// needed (0 = first attempt succeeded). Each retried attempt also
    /// stamps its own [`Stage::EngineExecute`] span, so a retried request
    /// shows one span per attempt plus this count.
    pub fn set_retries(&self, retries: u32) {
        self.inner.lock().expect("trace lock").retries = retries;
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        let inner = self.inner.lock().expect("trace lock");
        TraceSnapshot {
            request_id: self.request_id,
            model: inner.model.clone(),
            engine: inner.engine.clone(),
            session: inner.session.clone(),
            batch_id: inner.batch_id,
            stamps: inner.stamps.clone(),
            router: inner.router.clone(),
            retries: inner.retries,
        }
    }
}

/// An owned copy of a trace's recorded state (what the wire formats and
/// the trace store consume).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// The gateway-assigned request id.
    pub request_id: u64,
    /// Catalogued model name, once resolved.
    pub model: Option<String>,
    /// Concrete engine the request routed to, once resolved.
    pub engine: Option<String>,
    /// Wire-form session id the request continued, for stateful requests.
    pub session: Option<String>,
    /// Id of the batch the request rode in (shared by batch-mates).
    pub batch_id: Option<u64>,
    /// Recorded stage spans, in stamp order.
    pub stamps: Vec<StageStamp>,
    /// The dispatcher's routing decision, for `"auto"` requests.
    pub router: Option<RouterDecision>,
    /// Extra execution attempts the request's batch needed (0 = clean
    /// first attempt).
    pub retries: u32,
}

/// A completed request's trace: the snapshot plus its outcome — what the
/// ring buffer retains and `GET /v1/debug/traces` serves.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedTrace {
    /// Everything recorded along the path.
    pub snapshot: TraceSnapshot,
    /// End-to-end seconds from accept to finish.
    pub total_seconds: f64,
    /// HTTP status the request resolved to.
    pub status: u16,
    /// Stable error code for non-2xx outcomes.
    pub error_code: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotone_and_non_overlapping() {
        let trace = TraceContext::new(7);
        trace.stamp(Stage::Parse);
        std::thread::sleep(std::time::Duration::from_millis(2));
        trace.stamp(Stage::Admission);
        trace.stamp(Stage::QueueWait);
        let snapshot = trace.snapshot();
        assert_eq!(snapshot.request_id, 7);
        assert_eq!(snapshot.stamps.len(), 3);
        for pair in snapshot.stamps.windows(2) {
            assert!(pair[0].end_seconds <= pair[1].start_seconds + f64::EPSILON);
            assert_eq!(pair[0].end_seconds, pair[1].start_seconds);
        }
        for stamp in &snapshot.stamps {
            assert!(stamp.end_seconds >= stamp.start_seconds);
        }
        // The sleep landed inside the admission span.
        assert!(snapshot.stamps[1].seconds() >= 0.002);
    }

    #[test]
    fn annotations_survive_into_the_snapshot() {
        let trace = TraceContext::new(1);
        trace.set_model("cifar10-serve");
        trace.set_engine("simulator");
        trace.set_batch_id(42);
        trace.set_session("sess-0-0");
        let snapshot = trace.snapshot();
        assert_eq!(snapshot.model.as_deref(), Some("cifar10-serve"));
        assert_eq!(snapshot.engine.as_deref(), Some("simulator"));
        assert_eq!(snapshot.session.as_deref(), Some("sess-0-0"));
        assert_eq!(snapshot.batch_id, Some(42));
        assert!(snapshot.router.is_none());
        assert_eq!(snapshot.retries, 0);
        trace.set_retries(2);
        assert_eq!(trace.snapshot().retries, 2);
    }

    #[test]
    fn retried_attempts_stamp_one_engine_execute_span_each() {
        // The worker stamps EngineExecute once per attempt; spans must stay
        // monotone and non-overlapping even across the retry loop.
        let trace = TraceContext::new(3);
        trace.stamp(Stage::BatchFormation);
        trace.stamp(Stage::EngineExecute);
        std::thread::sleep(std::time::Duration::from_millis(1));
        trace.stamp(Stage::EngineExecute);
        trace.set_retries(1);
        let snapshot = trace.snapshot();
        let execute_spans: Vec<_> = snapshot
            .stamps
            .iter()
            .filter(|s| s.stage == Stage::EngineExecute)
            .collect();
        assert_eq!(execute_spans.len(), 2);
        assert_eq!(execute_spans[0].end_seconds, execute_spans[1].start_seconds);
        assert_eq!(snapshot.retries, 1);
    }

    #[test]
    fn stage_labels_are_stable() {
        let labels: Vec<&str> = Stage::all().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "parse",
                "router",
                "admission",
                "queue_wait",
                "batch_formation",
                "engine_execute",
                "stream_write",
                "response_write"
            ]
        );
    }
}
