//! A leveled, rate-limited structured event log: one JSON object per line
//! on stderr, for the events worth a log line in production — sheds,
//! engine errors, slow requests — without ever letting an overload turn
//! the log itself into the bottleneck.
//!
//! Rate limiting is a token bucket shared across all events: when the
//! bucket is empty the event is dropped and counted, and the next emitted
//! event carries a `"suppressed"` field so the gap is visible in the log
//! instead of silent.

use std::io::Write;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// Workers survive engine panics via `catch_unwind` (PR 7), so a panic
/// while holding the limiter or sink lock must not turn every later log
/// call into a second panic — both states stay sound across an unwind
/// (plain counters and an optional sink), so recovery is always safe.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Event severity, in ascending order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventLevel {
    /// Routine but notable (slow requests over the threshold).
    Info,
    /// Degraded service (sheds).
    Warn,
    /// Failures (engine errors).
    Error,
}

impl EventLevel {
    fn label(self) -> &'static str {
        match self {
            EventLevel::Info => "info",
            EventLevel::Warn => "warn",
            EventLevel::Error => "error",
        }
    }
}

/// One structured field value.
#[derive(Debug, Clone, Copy)]
pub enum EventValue<'a> {
    /// A string (JSON-escaped on write).
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A float (written with full precision).
    F64(f64),
}

#[derive(Debug)]
struct LimiterState {
    tokens: f64,
    last_refill: Instant,
    suppressed: u64,
}

/// The event log: level filter + token-bucket limiter + line sink.
pub struct EventLog {
    min_level: EventLevel,
    burst: f64,
    per_second: f64,
    limiter: Mutex<LimiterState>,
    /// `None` writes to stderr; tests inject a capturing sink.
    sink: Mutex<Option<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("min_level", &self.min_level)
            .field("burst", &self.burst)
            .field("per_second", &self.per_second)
            .finish_non_exhaustive()
    }
}

impl EventLog {
    /// Creates a log emitting events at or above `min_level`, allowing a
    /// burst of `burst` events refilled at `per_second` events/second.
    pub fn new(min_level: EventLevel, burst: f64, per_second: f64) -> Self {
        Self {
            min_level,
            burst: burst.max(1.0),
            per_second: per_second.max(0.0),
            limiter: Mutex::new(LimiterState {
                tokens: burst.max(1.0),
                last_refill: Instant::now(),
                suppressed: 0,
            }),
            sink: Mutex::new(None),
        }
    }

    /// Redirects output from stderr into `sink` (tests).
    pub fn set_sink(&self, sink: Box<dyn Write + Send>) {
        *lock_unpoisoned(&self.sink) = Some(sink);
    }

    /// Events dropped by the rate limiter since the last emitted line.
    pub fn suppressed(&self) -> u64 {
        lock_unpoisoned(&self.limiter).suppressed
    }

    /// Emits one structured event line, unless filtered or rate-limited.
    /// Returns whether the line was written.
    pub fn emit(&self, level: EventLevel, event: &str, fields: &[(&str, EventValue<'_>)]) -> bool {
        if level < self.min_level {
            return false;
        }
        let suppressed = {
            let mut state = lock_unpoisoned(&self.limiter);
            let elapsed = state.last_refill.elapsed().as_secs_f64();
            state.last_refill = Instant::now();
            state.tokens = (state.tokens + elapsed * self.per_second).min(self.burst);
            if state.tokens < 1.0 {
                state.suppressed += 1;
                return false;
            }
            state.tokens -= 1.0;
            std::mem::take(&mut state.suppressed)
        };

        let mut line = String::with_capacity(128);
        line.push_str("{\"level\":\"");
        line.push_str(level.label());
        line.push_str("\",\"event\":\"");
        escape_into(&mut line, event);
        line.push('"');
        for (key, value) in fields {
            line.push_str(",\"");
            escape_into(&mut line, key);
            line.push_str("\":");
            match value {
                EventValue::Str(s) => {
                    line.push('"');
                    escape_into(&mut line, s);
                    line.push('"');
                }
                EventValue::U64(n) => line.push_str(&n.to_string()),
                EventValue::F64(x) => line.push_str(&x.to_string()),
            }
        }
        if suppressed > 0 {
            line.push_str(&format!(",\"suppressed\":{suppressed}"));
        }
        line.push_str("}\n");

        let mut sink = lock_unpoisoned(&self.sink);
        match sink.as_mut() {
            Some(sink) => {
                let _ = sink.write_all(line.as_bytes());
                let _ = sink.flush();
            }
            None => {
                let _ = std::io::stderr().write_all(line.as_bytes());
            }
        }
        true
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A sink capturing lines into shared memory.
    #[derive(Debug, Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn emits_one_json_line_with_escaped_fields() {
        let log = EventLog::new(EventLevel::Info, 8.0, 1.0);
        let capture = Capture::default();
        log.set_sink(Box::new(capture.clone()));
        assert!(log.emit(
            EventLevel::Warn,
            "request_shed",
            &[
                ("reason", EventValue::Str("queue_full")),
                ("request_id", EventValue::U64(17)),
                ("detail", EventValue::Str("say \"hi\"\n")),
                ("backlog_seconds", EventValue::F64(1.5)),
            ],
        ));
        let text = capture.text();
        assert_eq!(
            text,
            "{\"level\":\"warn\",\"event\":\"request_shed\",\"reason\":\"queue_full\",\
             \"request_id\":17,\"detail\":\"say \\\"hi\\\"\\n\",\"backlog_seconds\":1.5}\n"
        );
    }

    #[test]
    fn level_filter_drops_quiet_events() {
        let log = EventLog::new(EventLevel::Warn, 8.0, 1.0);
        let capture = Capture::default();
        log.set_sink(Box::new(capture.clone()));
        assert!(!log.emit(EventLevel::Info, "slow_request", &[]));
        assert!(log.emit(EventLevel::Error, "engine_error", &[]));
        assert_eq!(capture.text().lines().count(), 1);
    }

    #[test]
    fn rate_limiter_suppresses_and_reports_the_gap() {
        // Burst of 2, no refill: the third event is dropped and the count
        // surfaces on the next line once tokens return.
        let log = EventLog::new(EventLevel::Info, 2.0, 0.0);
        let capture = Capture::default();
        log.set_sink(Box::new(capture.clone()));
        assert!(log.emit(EventLevel::Warn, "a", &[]));
        assert!(log.emit(EventLevel::Warn, "b", &[]));
        assert!(!log.emit(EventLevel::Warn, "c", &[]));
        assert!(!log.emit(EventLevel::Warn, "d", &[]));
        assert_eq!(log.suppressed(), 2);
        // Refill by hand (simulate time passing) via a fresh log sharing
        // the sink: the suppressed count is per-log, so instead verify the
        // suppressed field lands on the next successful emit.
        {
            let mut state = log.limiter.lock().unwrap();
            state.tokens = 1.0;
        }
        assert!(log.emit(EventLevel::Warn, "e", &[]));
        assert!(capture.text().contains("\"event\":\"e\",\"suppressed\":2}"));
        assert_eq!(log.suppressed(), 0);
    }

    #[test]
    fn survives_lock_poisoning_from_a_panicking_holder() {
        // Regression: workers survive engine panics via catch_unwind, so a
        // panic while holding the limiter or sink lock must not turn every
        // later emit/suppressed call into a second panic.
        let log = Arc::new(EventLog::new(EventLevel::Info, 8.0, 1.0));
        let capture = Capture::default();
        log.set_sink(Box::new(capture.clone()));

        let holder = Arc::clone(&log);
        let _ = std::thread::spawn(move || {
            let _limiter = holder.limiter.lock().unwrap();
            let _sink = holder.sink.lock().unwrap();
            panic!("injected panic while holding event-log locks");
        })
        .join();
        assert!(log.limiter.is_poisoned());
        assert!(log.sink.is_poisoned());

        // Every public entry point still works on the recovered guards.
        assert_eq!(log.suppressed(), 0);
        assert!(log.emit(
            EventLevel::Warn,
            "after_poison",
            &[("ok", EventValue::U64(1))],
        ));
        assert!(capture.text().contains("\"event\":\"after_poison\""));
        log.set_sink(Box::new(std::io::sink()));
    }
}
