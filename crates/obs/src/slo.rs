//! Declarative service-level objectives with rolling error budgets and
//! multi-window burn rates, evaluated against the [`TimeSeriesStore`].
//!
//! Each [`SloSpec`] names a compliance signal (a good/total counter pair,
//! a bad/total counter pair, or a gauge-below-threshold check), an
//! objective (the required compliance ratio, e.g. `0.999`) and two
//! windows: a long *budget* window and a short *fast* window. Evaluation
//! computes, per objective:
//!
//! * **compliance** over each window — the fraction of events (or gauge
//!   samples) that met the objective;
//! * **burn rate** per window — `(1 - compliance) / (1 - objective)`, the
//!   speed the error budget is being consumed at (1.0 = exactly the
//!   sustainable rate);
//! * **error budget remaining** — `1 - slow-window burn`, clamped to
//!   `[0, 1]`.
//!
//! Alerting follows the SRE multi-window burn-rate recipe: a fast-window
//! burn over the fast threshold (default 14.4 — the budget would be gone
//! in under an hour at a 30-day scale) pages, a slow-window burn over the
//! slow threshold (default 6.0) warns, and transitions between states emit
//! edge-triggered events into the [`EventLog`] so a sustained burn doesn't
//! flood the log.

use std::sync::Mutex;

use crate::events::{EventLevel, EventLog, EventValue};
use crate::timeseries::TimeSeriesStore;

/// The compliance signal an objective is measured by.
#[derive(Debug, Clone, PartialEq)]
pub enum SloSignal {
    /// `good / total` over a pair of counter series.
    GoodRatio {
        /// Counter series counting good events.
        good: String,
        /// Counter series counting all events.
        total: String,
    },
    /// `1 - bad / total` over a pair of counter series.
    BadRatio {
        /// Counter series counting bad events.
        bad: String,
        /// Counter series counting all events.
        total: String,
    },
    /// The fraction of gauge buckets whose *max* stayed at or below the
    /// threshold (conservative: a bucket with any excursion counts all
    /// its samples as non-compliant).
    GaugeBelow {
        /// Gauge series to check.
        series: String,
        /// Compliance threshold the gauge must stay at or below.
        threshold: f64,
    },
}

impl SloSignal {
    /// Stable label for wire formats.
    pub fn kind_label(&self) -> &'static str {
        match self {
            SloSignal::GoodRatio { .. } => "good_ratio",
            SloSignal::BadRatio { .. } => "bad_ratio",
            SloSignal::GaugeBelow { .. } => "gauge_below",
        }
    }
}

/// One declarative objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable name (metric label, JSON key).
    pub name: String,
    /// Required compliance ratio in `(0, 1)`, e.g. `0.999`.
    pub objective: f64,
    /// The budget window, seconds (the slow burn window).
    pub window_seconds: f64,
    /// The fast burn-detection window, seconds.
    pub fast_window_seconds: f64,
    /// The signal compliance is measured by.
    pub signal: SloSignal,
}

impl SloSpec {
    /// A good/total counter-ratio objective with default windows
    /// (300 s budget, 60 s fast).
    pub fn good_ratio(name: &str, objective: f64, good: &str, total: &str) -> Self {
        Self {
            name: name.to_string(),
            objective,
            window_seconds: 300.0,
            fast_window_seconds: 60.0,
            signal: SloSignal::GoodRatio {
                good: good.to_string(),
                total: total.to_string(),
            },
        }
    }

    /// A bad/total counter-ratio objective with default windows.
    pub fn bad_ratio(name: &str, objective: f64, bad: &str, total: &str) -> Self {
        Self {
            name: name.to_string(),
            objective,
            window_seconds: 300.0,
            fast_window_seconds: 60.0,
            signal: SloSignal::BadRatio {
                bad: bad.to_string(),
                total: total.to_string(),
            },
        }
    }

    /// A gauge-below-threshold objective with default windows.
    pub fn gauge_below(name: &str, objective: f64, series: &str, threshold: f64) -> Self {
        Self {
            name: name.to_string(),
            objective,
            window_seconds: 300.0,
            fast_window_seconds: 60.0,
            signal: SloSignal::GaugeBelow {
                series: series.to_string(),
                threshold,
            },
        }
    }

    /// Overrides the budget and fast windows.
    pub fn with_windows(mut self, window_seconds: f64, fast_window_seconds: f64) -> Self {
        self.window_seconds = window_seconds;
        self.fast_window_seconds = fast_window_seconds;
        self
    }
}

/// Burn-rate alert thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloTuning {
    /// Fast-window burn rate that pages (default 14.4).
    pub fast_burn_threshold: f64,
    /// Slow-window burn rate that warns (default 6.0).
    pub slow_burn_threshold: f64,
}

impl Default for SloTuning {
    fn default() -> Self {
        Self {
            fast_burn_threshold: 14.4,
            slow_burn_threshold: 6.0,
        }
    }
}

/// The alert state of one objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloAlert {
    /// Burning within budget.
    Ok,
    /// Slow-window burn over the warn threshold.
    SlowBurn,
    /// Fast-window burn over the page threshold.
    FastBurn,
}

impl SloAlert {
    /// Stable label for wire formats.
    pub fn label(self) -> &'static str {
        match self {
            SloAlert::Ok => "ok",
            SloAlert::SlowBurn => "slow_burn",
            SloAlert::FastBurn => "fast_burn",
        }
    }
}

/// One objective's evaluated status.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The objective's stable name.
    pub name: String,
    /// Required compliance ratio.
    pub objective: f64,
    /// Budget window, seconds.
    pub window_seconds: f64,
    /// Fast window, seconds.
    pub fast_window_seconds: f64,
    /// Signal kind label (`good_ratio` / `bad_ratio` / `gauge_below`).
    pub kind: &'static str,
    /// Compliance over the budget window.
    pub compliance: f64,
    /// Compliance over the fast window.
    pub fast_compliance: f64,
    /// Error budget remaining, `[0, 1]`.
    pub error_budget_remaining: f64,
    /// Burn rate over the fast window.
    pub burn_rate_fast: f64,
    /// Burn rate over the budget window.
    pub burn_rate_slow: f64,
    /// Current alert state.
    pub alert: SloAlert,
    /// Good events (or compliant gauge samples) in the budget window.
    pub good_events: f64,
    /// Total events (or gauge samples) in the budget window.
    pub total_events: f64,
}

/// The SLO engine: specs, thresholds and the edge-trigger alert state.
#[derive(Debug)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    tuning: SloTuning,
    /// Last alert state per spec, for edge-triggered event emission.
    last_alerts: Mutex<Vec<SloAlert>>,
}

impl SloEngine {
    /// Builds an engine over the given objectives.
    pub fn new(specs: Vec<SloSpec>, tuning: SloTuning) -> Self {
        let last_alerts = Mutex::new(vec![SloAlert::Ok; specs.len()]);
        Self {
            specs,
            tuning,
            last_alerts,
        }
    }

    /// The objectives the engine evaluates.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// The alert thresholds in effect.
    pub fn tuning(&self) -> SloTuning {
        self.tuning
    }

    /// Evaluates every objective against the store at the current time,
    /// emitting edge-triggered alert events into `events` if provided
    /// (pass `None` for a pure read, e.g. a `/metrics` render).
    pub fn evaluate(&self, store: &TimeSeriesStore, events: Option<&EventLog>) -> Vec<SloStatus> {
        self.evaluate_at(store, events, store.now_seconds())
    }

    /// [`evaluate`](Self::evaluate) at an explicit store time.
    pub fn evaluate_at(
        &self,
        store: &TimeSeriesStore,
        events: Option<&EventLog>,
        at_seconds: f64,
    ) -> Vec<SloStatus> {
        let statuses: Vec<SloStatus> = self
            .specs
            .iter()
            .map(|spec| self.status_of(spec, store, at_seconds))
            .collect();
        if let Some(events) = events {
            let mut last = self.last_alerts.lock().expect("slo alert state lock");
            for (status, previous) in statuses.iter().zip(last.iter_mut()) {
                if status.alert != *previous {
                    emit_transition(events, status, *previous);
                    *previous = status.alert;
                }
            }
        }
        statuses
    }

    fn status_of(&self, spec: &SloSpec, store: &TimeSeriesStore, at_seconds: f64) -> SloStatus {
        let (good, total) = compliance_events(&spec.signal, store, spec.window_seconds, at_seconds);
        let (fast_good, fast_total) =
            compliance_events(&spec.signal, store, spec.fast_window_seconds, at_seconds);
        let compliance = ratio_or_one(good, total);
        let fast_compliance = ratio_or_one(fast_good, fast_total);
        // An objective of 1.0 would make the budget zero; clamp so burn
        // rates stay finite.
        let budget_fraction = (1.0 - spec.objective).max(1e-9);
        let burn_rate_slow = (1.0 - compliance) / budget_fraction;
        let burn_rate_fast = (1.0 - fast_compliance) / budget_fraction;
        let alert = if burn_rate_fast >= self.tuning.fast_burn_threshold {
            SloAlert::FastBurn
        } else if burn_rate_slow >= self.tuning.slow_burn_threshold {
            SloAlert::SlowBurn
        } else {
            SloAlert::Ok
        };
        SloStatus {
            name: spec.name.clone(),
            objective: spec.objective,
            window_seconds: spec.window_seconds,
            fast_window_seconds: spec.fast_window_seconds,
            kind: spec.signal.kind_label(),
            compliance,
            fast_compliance,
            error_budget_remaining: (1.0 - burn_rate_slow).clamp(0.0, 1.0),
            burn_rate_fast,
            burn_rate_slow,
            alert,
            good_events: good,
            total_events: total,
        }
    }

    /// Renders the `bishop_slo_*` gauge families in Prometheus text
    /// format (a pure read: no alert events are emitted).
    pub fn render_into(&self, out: &mut String, store: &TimeSeriesStore) {
        let statuses = self.evaluate_at(store, None, store.now_seconds());
        if statuses.is_empty() {
            return;
        }
        out.push_str(
            "# HELP bishop_slo_objective Required compliance ratio per objective.\n\
             # TYPE bishop_slo_objective gauge\n",
        );
        for s in &statuses {
            out.push_str(&format!(
                "bishop_slo_objective{{slo=\"{}\"}} {}\n",
                s.name, s.objective
            ));
        }
        out.push_str(
            "# HELP bishop_slo_compliance Compliance over the budget window.\n\
             # TYPE bishop_slo_compliance gauge\n",
        );
        for s in &statuses {
            out.push_str(&format!(
                "bishop_slo_compliance{{slo=\"{}\"}} {}\n",
                s.name, s.compliance
            ));
        }
        out.push_str(
            "# HELP bishop_slo_error_budget_remaining Error budget left in the budget window, 0-1.\n\
             # TYPE bishop_slo_error_budget_remaining gauge\n",
        );
        for s in &statuses {
            out.push_str(&format!(
                "bishop_slo_error_budget_remaining{{slo=\"{}\"}} {}\n",
                s.name, s.error_budget_remaining
            ));
        }
        out.push_str(
            "# HELP bishop_slo_burn_rate Error-budget burn rate per window (1 = sustainable).\n\
             # TYPE bishop_slo_burn_rate gauge\n",
        );
        for s in &statuses {
            out.push_str(&format!(
                "bishop_slo_burn_rate{{slo=\"{}\",window=\"fast\"}} {}\n",
                s.name, s.burn_rate_fast
            ));
            out.push_str(&format!(
                "bishop_slo_burn_rate{{slo=\"{}\",window=\"slow\"}} {}\n",
                s.name, s.burn_rate_slow
            ));
        }
        out.push_str(
            "# HELP bishop_slo_alert Alert state per objective (0 ok, 1 slow burn, 2 fast burn).\n\
             # TYPE bishop_slo_alert gauge\n",
        );
        for s in &statuses {
            let level = match s.alert {
                SloAlert::Ok => 0,
                SloAlert::SlowBurn => 1,
                SloAlert::FastBurn => 2,
            };
            out.push_str(&format!("bishop_slo_alert{{slo=\"{}\"}} {level}\n", s.name));
        }
    }
}

/// `(good, total)` event counts for a signal over one window. No events
/// means fully compliant (an idle service burns no budget).
fn compliance_events(
    signal: &SloSignal,
    store: &TimeSeriesStore,
    window_seconds: f64,
    at_seconds: f64,
) -> (f64, f64) {
    match signal {
        SloSignal::GoodRatio { good, total } => {
            let total = store.window_sum(total, window_seconds, at_seconds).max(0.0);
            let good = store
                .window_sum(good, window_seconds, at_seconds)
                .clamp(0.0, total);
            (good, total)
        }
        SloSignal::BadRatio { bad, total } => {
            let total = store.window_sum(total, window_seconds, at_seconds).max(0.0);
            let bad = store
                .window_sum(bad, window_seconds, at_seconds)
                .clamp(0.0, total);
            (total - bad, total)
        }
        SloSignal::GaugeBelow { series, threshold } => {
            let mut good = 0u64;
            let mut total = 0u64;
            for point in store.window_points(series, window_seconds, at_seconds) {
                total += point.samples;
                if point.max <= *threshold {
                    good += point.samples;
                }
            }
            (good as f64, total as f64)
        }
    }
}

fn ratio_or_one(good: f64, total: f64) -> f64 {
    if total <= 0.0 {
        1.0
    } else {
        (good / total).clamp(0.0, 1.0)
    }
}

fn emit_transition(events: &EventLog, status: &SloStatus, previous: SloAlert) {
    let (event, level) = match status.alert {
        SloAlert::FastBurn => ("slo_fast_burn", EventLevel::Error),
        SloAlert::SlowBurn => ("slo_slow_burn", EventLevel::Warn),
        SloAlert::Ok => ("slo_recovered", EventLevel::Info),
    };
    events.emit(
        level,
        event,
        &[
            ("slo", EventValue::Str(&status.name)),
            ("previous", EventValue::Str(previous.label())),
            ("compliance", EventValue::F64(status.compliance)),
            ("burn_rate_fast", EventValue::F64(status.burn_rate_fast)),
            ("burn_rate_slow", EventValue::F64(status.burn_rate_slow)),
            (
                "error_budget_remaining",
                EventValue::F64(status.error_budget_remaining),
            ),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::{Resolution, TimeSeriesConfig};

    fn store() -> TimeSeriesStore {
        TimeSeriesStore::new(TimeSeriesConfig {
            resolutions: vec![Resolution {
                bucket_seconds: 1,
                slots: 600,
            }],
        })
    }

    fn availability() -> SloSpec {
        SloSpec::good_ratio("availability", 0.9, "ok", "finished").with_windows(100.0, 10.0)
    }

    #[test]
    fn idle_objectives_are_fully_compliant() {
        let engine = SloEngine::new(vec![availability()], SloTuning::default());
        let statuses = engine.evaluate_at(&store(), None, 50.0);
        assert_eq!(statuses.len(), 1);
        let s = &statuses[0];
        assert_eq!(s.compliance, 1.0);
        assert_eq!(s.error_budget_remaining, 1.0);
        assert_eq!(s.burn_rate_fast, 0.0);
        assert_eq!(s.alert, SloAlert::Ok);
        assert_eq!(s.kind, "good_ratio");
    }

    #[test]
    fn a_total_outage_burns_fast_and_emits_one_edge_triggered_alert() {
        let ts = store();
        // 100 s of healthy traffic...
        for t in 0..100 {
            let at = t as f64 + 0.5;
            ts.record_counter_at(at, "ok", (t * 10) as f64);
            ts.record_counter_at(at, "finished", (t * 10) as f64);
        }
        // ...then 10 s of total outage.
        for t in 100..110 {
            let at = t as f64 + 0.5;
            ts.record_counter_at(at, "ok", 990.0);
            ts.record_counter_at(at, "finished", (990 + (t - 99) * 10) as f64);
        }
        // Fast window burn during total outage is (1-0)/(1-0.9) = 10;
        // page at 8 so the outage crosses it.
        let engine = SloEngine::new(
            vec![availability()],
            SloTuning {
                fast_burn_threshold: 8.0,
                slow_burn_threshold: 6.0,
            },
        );
        let log = EventLog::new(EventLevel::Info, 8.0, 1.0);
        let sink = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Cap(std::sync::Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Cap {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        log.set_sink(Box::new(Cap(std::sync::Arc::clone(&sink))));

        let statuses = engine.evaluate_at(&ts, Some(&log), 109.9);
        let s = &statuses[0];
        // Fast window (10 s) is a near-total outage (bucket alignment lets
        // one healthy boundary bucket in): burn ≈ (1 - 0.09) / 0.1 ≈ 9.
        assert!(s.fast_compliance < 0.15, "fast {}", s.fast_compliance);
        assert!((s.burn_rate_fast - 9.1).abs() < 1.0);
        assert_eq!(s.alert, SloAlert::FastBurn);
        assert!(s.error_budget_remaining < 1.0);
        assert!(s.compliance < 1.0);

        // Re-evaluating in the same state emits no second event.
        engine.evaluate_at(&ts, Some(&log), 109.95);
        let text = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        assert_eq!(text.matches("\"slo\":\"availability\"").count(), 1);

        // Recovery: 30 s of clean traffic clears the fast window and
        // emits one recovery event.
        for t in 110..140 {
            let at = t as f64 + 0.5;
            ts.record_counter_at(at, "ok", (1000 + (t - 109) * 10) as f64);
            ts.record_counter_at(at, "finished", (1100 + (t - 109) * 10) as f64);
        }
        let statuses = engine.evaluate_at(&ts, Some(&log), 139.9);
        let s = &statuses[0];
        assert_eq!(s.fast_compliance, 1.0);
        assert!(s.burn_rate_fast < 1e-9);
        // The budget window still remembers the outage.
        assert!(s.compliance < 1.0);
        assert!(s.error_budget_remaining < 1.0);
        assert_eq!(s.alert, SloAlert::Ok);
        let text = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"event\":\"slo_recovered\""));
    }

    #[test]
    fn gauge_below_counts_excursion_buckets_as_non_compliant() {
        let ts = store();
        for t in 0..10 {
            ts.record_gauge_at(t as f64 + 0.5, "p95", 0.2);
        }
        ts.record_gauge_at(10.5, "p95", 5.0); // one excursion bucket
        let spec = SloSpec::gauge_below("latency", 0.5, "p95", 1.0).with_windows(20.0, 5.0);
        let engine = SloEngine::new(vec![spec], SloTuning::default());
        let s = &engine.evaluate_at(&ts, None, 10.9)[0];
        assert_eq!(s.kind, "gauge_below");
        assert_eq!(s.total_events, 11.0);
        assert_eq!(s.good_events, 10.0);
        assert!(s.compliance > 0.89 && s.compliance < 0.92);
    }

    #[test]
    fn bad_ratio_inverts_the_signal() {
        let ts = store();
        ts.record_counter_at(0.5, "shed", 0.0);
        ts.record_counter_at(0.5, "submitted", 0.0);
        ts.record_counter_at(1.5, "shed", 5.0);
        ts.record_counter_at(1.5, "submitted", 100.0);
        let spec =
            SloSpec::bad_ratio("shed_rate", 0.99, "shed", "submitted").with_windows(10.0, 2.0);
        let engine = SloEngine::new(vec![spec], SloTuning::default());
        let s = &engine.evaluate_at(&ts, None, 1.9)[0];
        assert!((s.compliance - 0.95).abs() < 1e-9);
        assert!((s.burn_rate_slow - 5.0).abs() < 1e-6);
        assert_eq!(s.alert, SloAlert::Ok);
    }

    #[test]
    fn render_emits_every_slo_family_once() {
        let engine = SloEngine::new(
            vec![
                availability(),
                SloSpec::bad_ratio("shed_rate", 0.99, "shed", "submitted"),
            ],
            SloTuning::default(),
        );
        let mut out = String::new();
        engine.render_into(&mut out, &store());
        for family in [
            "bishop_slo_objective",
            "bishop_slo_compliance",
            "bishop_slo_error_budget_remaining",
            "bishop_slo_burn_rate",
            "bishop_slo_alert",
        ] {
            assert_eq!(out.matches(&format!("# TYPE {family} gauge")).count(), 1);
        }
        assert!(out.contains("bishop_slo_compliance{slo=\"availability\"} 1"));
        assert!(out.contains("bishop_slo_burn_rate{slo=\"shed_rate\",window=\"fast\"} 0"));
        assert!(out.contains("bishop_slo_alert{slo=\"availability\"} 0"));
    }
}
