//! # bishop-obs
//!
//! Zero-external-dependency observability for the Bishop serving stack:
//! end-to-end request tracing, per-stage latency histograms, router
//! decision records, bounded trace retention and a rate-limited structured
//! event log — the per-request analogue of the paper's Fig. 17 latency
//! decomposition, applied to the serving path instead of the chip.
//!
//! The crate sits *below* `bishop-runtime` in the dependency graph and
//! knows nothing about HTTP, engines or batches; it only provides the
//! vocabulary the serving layers stamp into:
//!
//! * [`TraceContext`] — one per request, allocated at the edge, carried as
//!   an `Arc` along the whole path, stamped at each stage boundary
//!   ([`Stage`]). Spans are monotone and non-overlapping by construction.
//! * [`StageHistograms`] — lock-free log-bucketed histograms per
//!   `(engine, stage)`, rendered as the `bishop_stage_seconds` Prometheus
//!   histogram family.
//! * [`TraceStore`] — a fixed-size ring of recent [`FinishedTrace`]s plus
//!   a slowest-N tier, so fast traffic cannot evict the outlier under
//!   investigation.
//! * [`RouterDecision`] — the dispatcher's evidence for each `"auto"`
//!   request: candidates considered, predicted completion vs deadline,
//!   verdict (chosen / degraded / shed), counted by [`RouterMetrics`].
//! * [`EventLog`] — leveled, token-bucket rate-limited JSON lines on
//!   stderr for sheds, engine errors and slow requests.
//! * [`TimeSeriesStore`] — fixed-memory multi-resolution rollups (1 s /
//!   10 s / 60 s rings) of counters, gauges and histogram quantiles, fed
//!   by the runtime's background sampler.
//! * [`SloEngine`] — declarative objectives with rolling error budgets
//!   and multi-window burn rates over the store, surfaced as
//!   `GET /v1/slo`, `bishop_slo_*` metrics and edge-triggered alerts.
//! * [`WorkerProfiler`] — an always-on sampling wall-clock profiler:
//!   worker threads publish their stage to an atomic [`StageSlot`] and
//!   the sampler aggregates self-time per engine × stage
//!   (`GET /v1/debug/profile`).
//!
//! [`ObsHub`] bundles all of the above behind one `Arc` the serving stack
//! threads through itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod histogram;
pub mod profile;
pub mod router;
pub mod slo;
pub mod store;
pub mod timeseries;
pub mod trace;

pub use events::{EventLevel, EventLog, EventValue};
pub use histogram::{HistogramSnapshot, LogHistogram, StageHistograms};
pub use profile::{ProfileEntry, ProfileReport, StageSlot, WorkerProfiler, WorkerStage};
pub use router::{RouterCandidate, RouterDecision, RouterMetrics, RouterVerdict};
pub use slo::{SloAlert, SloEngine, SloSignal, SloSpec, SloStatus, SloTuning};
pub use store::TraceStore;
pub use timeseries::{Resolution, SeriesKind, SeriesPoint, TimeSeriesConfig, TimeSeriesStore};
pub use trace::{FinishedTrace, Stage, StageStamp, TraceContext, TraceSnapshot};

use std::sync::Arc;

/// Configuration of an [`ObsHub`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// How many recently finished traces the ring buffer retains.
    pub recent_traces: usize,
    /// How many slowest-ever traces are retained besides the ring.
    pub slowest_traces: usize,
    /// Requests slower than this (seconds, end to end) emit a
    /// `slow_request` event.
    pub slow_threshold_seconds: f64,
    /// Minimum severity the event log emits.
    pub event_level: EventLevel,
    /// Token-bucket burst of the event log.
    pub event_burst: f64,
    /// Token-bucket refill rate of the event log (events/second).
    pub events_per_second: f64,
    /// Rollup ladder of the time-series store.
    pub timeseries: TimeSeriesConfig,
    /// Declarative service-level objectives (defaults:
    /// [`default_slos`](ObsConfig::default_slos)).
    pub slos: Vec<SloSpec>,
    /// Burn-rate alert thresholds.
    pub slo_tuning: SloTuning,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            recent_traces: 256,
            slowest_traces: 32,
            slow_threshold_seconds: 1.0,
            event_level: EventLevel::Info,
            event_burst: 32.0,
            events_per_second: 16.0,
            timeseries: TimeSeriesConfig::default(),
            slos: ObsConfig::default_slos(),
            slo_tuning: SloTuning::default(),
        }
    }
}

impl ObsConfig {
    /// The stock objectives, phrased over the series the runtime's
    /// background sampler feeds:
    ///
    /// * `availability` — ≥ 99.9% of finished requests succeed (failures
    ///   and breaker/shutdown sheds count against it);
    /// * `shed_rate` — ≤ 1% of submitted requests shed for any reason;
    /// * `execute_p95` — the all-engines p95 of `engine_execute` stays
    ///   under 1 s for ≥ 99% of sampled windows.
    pub fn default_slos() -> Vec<SloSpec> {
        vec![
            SloSpec::good_ratio("availability", 0.999, "requests.ok", "requests.finished"),
            SloSpec::bad_ratio("shed_rate", 0.99, "requests.shed", "requests.submitted"),
            SloSpec::gauge_below("execute_p95", 0.99, "stage_p95.all.engine_execute", 1.0),
        ]
    }
    /// Overrides the trace retention tiers.
    pub fn with_trace_retention(mut self, recent: usize, slowest: usize) -> Self {
        self.recent_traces = recent;
        self.slowest_traces = slowest;
        self
    }

    /// Overrides the slow-request threshold.
    pub fn with_slow_threshold(mut self, seconds: f64) -> Self {
        self.slow_threshold_seconds = seconds;
        self
    }

    /// Overrides the event log's level and rate limit.
    pub fn with_event_log(mut self, level: EventLevel, burst: f64, per_second: f64) -> Self {
        self.event_level = level;
        self.event_burst = burst;
        self.events_per_second = per_second;
        self
    }

    /// Overrides the time-series rollup ladder.
    pub fn with_timeseries(mut self, timeseries: TimeSeriesConfig) -> Self {
        self.timeseries = timeseries;
        self
    }

    /// Replaces the service-level objectives.
    pub fn with_slos(mut self, slos: Vec<SloSpec>) -> Self {
        self.slos = slos;
        self
    }

    /// Overrides the burn-rate alert thresholds.
    pub fn with_slo_tuning(mut self, tuning: SloTuning) -> Self {
        self.slo_tuning = tuning;
        self
    }
}

/// Every observability consumer behind one shared handle: histograms,
/// trace retention, router metrics and the event log.
#[derive(Debug)]
pub struct ObsHub {
    config: ObsConfig,
    /// Per-`(engine, stage)` latency histograms (`bishop_stage_seconds`).
    pub histograms: StageHistograms,
    /// Finished-trace retention behind `GET /v1/debug/traces`.
    pub traces: TraceStore,
    /// `"auto"` dispatch verdict counters.
    pub router: RouterMetrics,
    /// The structured event log.
    pub events: EventLog,
    /// Multi-resolution windowed rollups the background sampler feeds.
    pub timeseries: TimeSeriesStore,
    /// Error-budget / burn-rate evaluation over the time series.
    pub slo: SloEngine,
    /// Sampled wall-clock self-time of the domain worker threads.
    pub profiler: WorkerProfiler,
}

impl Default for ObsHub {
    fn default() -> Self {
        Self::new(ObsConfig::default())
    }
}

impl ObsHub {
    /// Builds a hub from the given configuration.
    pub fn new(config: ObsConfig) -> Self {
        Self {
            histograms: StageHistograms::new(),
            traces: TraceStore::new(config.recent_traces, config.slowest_traces),
            router: RouterMetrics::new(),
            events: EventLog::new(
                config.event_level,
                config.event_burst,
                config.events_per_second,
            ),
            timeseries: TimeSeriesStore::new(config.timeseries.clone()),
            slo: SloEngine::new(config.slos.clone(), config.slo_tuning),
            profiler: WorkerProfiler::new(),
            config,
        }
    }

    /// The configuration the hub was built with.
    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    /// Finishes one request's trace: feeds every recorded span into the
    /// stage histograms (attributed to the resolved engine, or `"none"`),
    /// retains the trace, and emits a `slow_request` event when the
    /// end-to-end time crosses the configured threshold. Returns the
    /// retained record.
    pub fn finish(
        &self,
        trace: &TraceContext,
        status: u16,
        error_code: Option<&str>,
    ) -> Arc<FinishedTrace> {
        let total_seconds = trace.elapsed_seconds();
        let snapshot = trace.snapshot();
        let engine = snapshot
            .engine
            .clone()
            .unwrap_or_else(|| "none".to_string());
        for stamp in &snapshot.stamps {
            self.histograms
                .record(&engine, stamp.stage.label(), stamp.seconds());
        }
        let finished = Arc::new(FinishedTrace {
            snapshot,
            total_seconds,
            status,
            error_code: error_code.map(str::to_string),
        });
        self.traces.push(Arc::clone(&finished));
        if total_seconds >= self.config.slow_threshold_seconds {
            self.events.emit(
                EventLevel::Info,
                "slow_request",
                &[
                    ("request_id", EventValue::U64(finished.snapshot.request_id)),
                    ("total_seconds", EventValue::F64(total_seconds)),
                    ("engine", EventValue::Str(&engine)),
                    ("status", EventValue::U64(status as u64)),
                ],
            );
        }
        finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_feeds_histograms_store_and_slow_log() {
        let hub = ObsHub::new(
            ObsConfig::default()
                .with_trace_retention(4, 2)
                .with_slow_threshold(0.0),
        );
        hub.events.set_sink(Box::new(std::io::sink()));
        let trace = TraceContext::new(9);
        trace.set_engine("simulator");
        trace.stamp(Stage::Parse);
        trace.stamp(Stage::EngineExecute);
        let finished = hub.finish(&trace, 200, None);
        assert_eq!(finished.status, 200);
        assert_eq!(finished.snapshot.stamps.len(), 2);
        assert!(hub.traces.find(9).is_some());
        let mut out = String::new();
        hub.histograms.render_into(&mut out);
        assert!(out.contains(
            "bishop_stage_seconds_count{engine=\"simulator\",stage=\"engine_execute\"} 1"
        ));
        // Threshold 0: every request is "slow", so the event spent a token.
        assert_eq!(hub.events.suppressed(), 0);
    }

    #[test]
    fn unresolved_engines_attribute_to_none() {
        let hub = ObsHub::default();
        let trace = TraceContext::new(1);
        trace.stamp(Stage::Parse);
        let finished = hub.finish(&trace, 429, Some("queue_full"));
        assert_eq!(finished.error_code.as_deref(), Some("queue_full"));
        let mut out = String::new();
        hub.histograms.render_into(&mut out);
        assert!(out.contains("bishop_stage_seconds_count{engine=\"none\",stage=\"parse\"} 1"));
    }
}
