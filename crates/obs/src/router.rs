//! Router decision records: why the deadline-aware dispatcher chose (or
//! refused) an engine for an `"auto"` request.
//!
//! The record is evidence, not telemetry aggregate: it lists every
//! candidate the dispatcher actually considered, with the predicted
//! completion it computed against the deadline at that instant — enough to
//! answer "why did this request degrade to the simulator?" or "why was it
//! shed?" from the trace alone. [`RouterMetrics`] additionally counts
//! verdicts as a labeled Prometheus family so dashboards see degradation
//! and shed rates without reading traces.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// One engine the dispatcher considered for an `"auto"` request.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterCandidate {
    /// Engine name, in preference order.
    pub engine: String,
    /// Whether the engine's descriptor can execute the request profile at
    /// all (ECP support, fold limit).
    pub eligible: bool,
    /// Predicted completion in seconds — domain backlog plus the request's
    /// own cost at the calibrated drain rate. `None` for ineligible
    /// candidates and for deadline-less requests (nothing was predicted).
    pub predicted_seconds: Option<f64>,
    /// Whether the prediction met the deadline (`None` without one).
    pub meets_deadline: Option<bool>,
    /// Whether the engine was skipped because its circuit breaker refused
    /// admission (open, or half-open with the probe quota spent).
    pub breaker_open: bool,
}

/// Asserts the shape of a [`RouterVerdict`] with a readable failure.
///
/// Two forms:
///
/// ```
/// use bishop_obs::{assert_verdict, RouterVerdict};
/// let verdict = RouterVerdict::Chosen { engine: "simulator".into(), degraded: true };
/// assert_verdict!(verdict, chosen = "simulator", degraded = true);
/// let shed = RouterVerdict::Shed { reason: "queue_full".into() };
/// assert_verdict!(shed, shed = "queue_full");
/// ```
#[macro_export]
macro_rules! assert_verdict {
    ($verdict:expr, chosen = $engine:expr, degraded = $degraded:expr) => {
        match &$verdict {
            $crate::RouterVerdict::Chosen { engine, degraded }
                if engine.as_str() == $engine && *degraded == $degraded => {}
            other => panic!(
                "expected Chosen {{ engine: {:?}, degraded: {} }}, got {other:?}",
                $engine, $degraded
            ),
        }
    };
    ($verdict:expr, shed = $reason:expr) => {
        match &$verdict {
            $crate::RouterVerdict::Shed { reason } if reason.as_str() == $reason => {}
            other => panic!("expected Shed {{ reason: {:?} }}, got {other:?}", $reason),
        }
    };
}

/// What the dispatcher concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum RouterVerdict {
    /// An engine was chosen. `degraded` is set when a more-preferred
    /// eligible engine was skipped because its predicted completion missed
    /// the deadline — or because its circuit breaker refused admission —
    /// the request got a cheaper substrate than preference alone would
    /// have given it.
    Chosen {
        /// The engine the request was routed to.
        engine: String,
        /// Whether a more-preferred eligible engine was passed over.
        degraded: bool,
    },
    /// The request was shed with the given stable rejection code.
    Shed {
        /// Stable rejection code (`no_engine_meets_deadline`, …).
        reason: String,
    },
}

impl RouterVerdict {
    /// The stable verdict label used on metrics.
    pub fn label(&self) -> &'static str {
        match self {
            RouterVerdict::Chosen {
                degraded: false, ..
            } => "chosen",
            RouterVerdict::Chosen { degraded: true, .. } => "degraded",
            RouterVerdict::Shed { .. } => "shed",
        }
    }

    /// The engine label for metrics (`none` for sheds).
    pub fn engine_label(&self) -> &str {
        match self {
            RouterVerdict::Chosen { engine, .. } => engine,
            RouterVerdict::Shed { .. } => "none",
        }
    }
}

/// The full decision record attached to an `"auto"` request's trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterDecision {
    /// The request's deadline in seconds, when it had one.
    pub deadline_seconds: Option<f64>,
    /// Every candidate considered, in preference order, up to and
    /// including the chosen one.
    pub candidates: Vec<RouterCandidate>,
    /// What the dispatcher concluded.
    pub verdict: RouterVerdict,
}

/// Labeled verdict counters: `bishop_router_decisions_total{engine=,verdict=}`.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    counts: Mutex<BTreeMap<(String, &'static str), u64>>,
}

impl RouterMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one decision.
    pub fn record(&self, decision: &RouterDecision) {
        let key = (
            decision.verdict.engine_label().to_string(),
            decision.verdict.label(),
        );
        *self
            .counts
            .lock()
            .expect("router metrics lock")
            .entry(key)
            .or_insert(0) += 1;
    }

    /// The count for one `(engine, verdict)` pair.
    pub fn count(&self, engine: &str, verdict: &str) -> u64 {
        self.counts
            .lock()
            .expect("router metrics lock")
            .iter()
            .find(|((e, v), _)| e == engine && *v == verdict)
            .map(|(_, &count)| count)
            .unwrap_or(0)
    }

    /// Every `(engine, verdict)` count at once — the background sampler
    /// rolls these into per-verdict counter series.
    pub fn snapshot(&self) -> Vec<((String, &'static str), u64)> {
        self.counts
            .lock()
            .expect("router metrics lock")
            .iter()
            .map(|(key, &count)| (key.clone(), count))
            .collect()
    }

    /// Renders the `bishop_router_decisions_total` family in Prometheus
    /// text format (one header, labeled series grouped under it).
    pub fn render_into(&self, out: &mut String) {
        out.push_str(
            "# HELP bishop_router_decisions_total Auto-dispatch decisions by chosen engine \
             and verdict (chosen / degraded / shed).\n\
             # TYPE bishop_router_decisions_total counter\n",
        );
        let counts = self.counts.lock().expect("router metrics lock");
        for ((engine, verdict), count) in counts.iter() {
            out.push_str(&format!(
                "bishop_router_decisions_total{{engine=\"{engine}\",verdict=\"{verdict}\"}} {count}\n"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(verdict: RouterVerdict) -> RouterDecision {
        RouterDecision {
            deadline_seconds: Some(0.05),
            candidates: vec![
                RouterCandidate {
                    engine: "native".to_string(),
                    eligible: true,
                    predicted_seconds: Some(1.2),
                    meets_deadline: Some(false),
                    breaker_open: false,
                },
                RouterCandidate {
                    engine: "simulator".to_string(),
                    eligible: true,
                    predicted_seconds: Some(0.001),
                    meets_deadline: Some(true),
                    breaker_open: false,
                },
            ],
            verdict,
        }
    }

    #[test]
    fn verdict_labels_distinguish_degradation_from_preference() {
        let chosen = RouterVerdict::Chosen {
            engine: "native".to_string(),
            degraded: false,
        };
        let degraded = RouterVerdict::Chosen {
            engine: "simulator".to_string(),
            degraded: true,
        };
        let shed = RouterVerdict::Shed {
            reason: "no_engine_meets_deadline".to_string(),
        };
        assert_eq!(chosen.label(), "chosen");
        assert_eq!(degraded.label(), "degraded");
        assert_eq!(shed.label(), "shed");
        assert_eq!(shed.engine_label(), "none");
    }

    #[test]
    fn metrics_count_and_render_labeled_verdicts() {
        let metrics = RouterMetrics::new();
        metrics.record(&decision(RouterVerdict::Chosen {
            engine: "simulator".to_string(),
            degraded: true,
        }));
        metrics.record(&decision(RouterVerdict::Chosen {
            engine: "simulator".to_string(),
            degraded: true,
        }));
        metrics.record(&decision(RouterVerdict::Shed {
            reason: "no_engine_meets_deadline".to_string(),
        }));
        assert_eq!(metrics.count("simulator", "degraded"), 2);
        assert_eq!(metrics.count("none", "shed"), 1);
        let mut out = String::new();
        metrics.render_into(&mut out);
        assert_eq!(
            out.matches("# TYPE bishop_router_decisions_total counter")
                .count(),
            1
        );
        assert!(out.contains(
            "bishop_router_decisions_total{engine=\"simulator\",verdict=\"degraded\"} 2"
        ));
        assert!(out.contains("bishop_router_decisions_total{engine=\"none\",verdict=\"shed\"} 1"));
    }

    #[test]
    fn assert_verdict_macro_accepts_matching_shapes() {
        assert_verdict!(
            RouterVerdict::Chosen {
                engine: "native".to_string(),
                degraded: false
            },
            chosen = "native",
            degraded = false
        );
        assert_verdict!(
            RouterVerdict::Shed {
                reason: "queue_full".to_string()
            },
            shed = "queue_full"
        );
    }

    #[test]
    #[should_panic(expected = "expected Chosen")]
    fn assert_verdict_macro_reports_mismatches() {
        assert_verdict!(
            RouterVerdict::Shed {
                reason: "queue_full".to_string()
            },
            chosen = "native",
            degraded = false
        );
    }
}
