//! Log-bucketed latency histograms in Prometheus exposition shape.
//!
//! Buckets are geometric — powers of two from 1 µs to ~67 s — so one fixed
//! 28-bucket layout covers everything from a sub-millisecond simulator
//! batch to a multi-second native flood with bounded relative error, and
//! recording is a couple of atomic adds (no locks, no allocation, no
//! sampling window to overflow — unlike the bounded p50/p95 windows these
//! histograms replace as the `/metrics` source of truth).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Upper bounds (seconds) of the log-spaced buckets: `1e-6 · 2^k` for
/// `k = 0..27`. Everything above the last bound lands in `+Inf`.
pub const BUCKET_BOUNDS: usize = 27;

fn bound(index: usize) -> f64 {
    1e-6 * f64::powi(2.0, index as i32)
}

/// The upper bound (seconds) of log bucket `index`; indexes at or past
/// [`BUCKET_BOUNDS`] are the `+Inf` overflow bucket.
pub fn bucket_bound(index: usize) -> f64 {
    if index >= BUCKET_BOUNDS {
        f64::INFINITY
    } else {
        bound(index)
    }
}

/// One lock-free histogram: per-bucket counters plus a running sum.
#[derive(Debug)]
pub struct LogHistogram {
    /// `buckets[k]` counts observations `<= bound(k)`, non-cumulative;
    /// the last slot is the `+Inf` overflow bucket.
    buckets: [AtomicU64; BUCKET_BOUNDS + 1],
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Records one observation in seconds (negatives clamp to zero).
    pub fn record(&self, seconds: f64) {
        let seconds = if seconds.is_finite() {
            seconds.max(0.0)
        } else {
            0.0
        };
        let index = (0..BUCKET_BOUNDS)
            .find(|&k| seconds <= bound(k))
            .unwrap_or(BUCKET_BOUNDS);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Lock-free f64 accumulation via bit-cast CAS.
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(current) + seconds;
            match self.sum_bits.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in seconds.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative bucket counts, one per bound plus the `+Inf` bucket.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0;
        self.buckets
            .iter()
            .map(|bucket| {
                total += bucket.load(Ordering::Relaxed);
                total
            })
            .collect()
    }

    /// An owned point-in-time copy of the bucket counts, for windowed
    /// rollups ([`HistogramSnapshot::diff`]) and quantile estimation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|k| self.buckets[k].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// An owned copy of a [`LogHistogram`]'s non-cumulative bucket counts.
///
/// Snapshots support the set algebra the time-series rollup path needs:
/// [`diff`](Self::diff) turns two cumulative scrapes into the window
/// between them, [`merge`](Self::merge) folds per-engine windows into an
/// all-engines one, and [`quantile`](Self::quantile) estimates a latency
/// quantile by linear interpolation within the log bucket it lands in.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Non-cumulative bucket counts; the last slot is `+Inf`.
    counts: [u64; BUCKET_BOUNDS + 1],
    count: u64,
    sum: f64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            counts: [0; BUCKET_BOUNDS + 1],
            count: 0,
            sum: 0.0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (identity for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Total observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the observations in seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Folds `other` into `self` bucket-by-bucket.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The observations recorded between `earlier` and `self` — the
    /// window between two scrapes of the same histogram. Saturating, so
    /// a mismatched pair degrades to zeros instead of wrapping.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|k| self.counts[k].saturating_sub(earlier.counts[k])),
            count: self.count.saturating_sub(earlier.count),
            sum: (self.sum - earlier.sum).max(0.0),
        }
    }

    /// Estimates quantile `q` (clamped to `[0, 1]`) in seconds.
    ///
    /// The estimate interpolates linearly between the containing bucket's
    /// bounds (the lowest bucket starts at 0), exactly like Prometheus'
    /// `histogram_quantile`; observations in the `+Inf` overflow bucket
    /// report the last finite bound. Estimates are monotone in `q` by
    /// construction. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (k, &in_bucket) in self.counts.iter().enumerate() {
            cumulative += in_bucket;
            if in_bucket > 0 && cumulative as f64 >= rank {
                if k >= BUCKET_BOUNDS {
                    return bound(BUCKET_BOUNDS - 1);
                }
                let lower = if k == 0 { 0.0 } else { bound(k - 1) };
                let upper = bound(k);
                let into_bucket = rank - (cumulative - in_bucket) as f64;
                let fraction = (into_bucket / in_bucket as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * fraction;
            }
        }
        bound(BUCKET_BOUNDS - 1)
    }
}

/// The per-`(engine, stage)` histogram registry behind
/// `bishop_stage_seconds` on `/metrics`.
///
/// Label cardinality is bounded by design: engines × stages, with
/// `engine="none"` for spans recorded before a request resolved to a
/// concrete engine (parse failures, pre-route sheds).
#[derive(Debug, Default)]
pub struct StageHistograms {
    series: Mutex<BTreeMap<(String, &'static str), Arc<LogHistogram>>>,
}

impl StageHistograms {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one stage span for an engine (or `"none"` pre-route).
    pub fn record(&self, engine: &str, stage: &'static str, seconds: f64) {
        let histogram = {
            let mut series = self.series.lock().expect("histogram registry lock");
            match series.get(&(engine.to_string(), stage)) {
                Some(histogram) => Arc::clone(histogram),
                None => {
                    let histogram = Arc::new(LogHistogram::new());
                    series.insert((engine.to_string(), stage), Arc::clone(&histogram));
                    histogram
                }
            }
        };
        histogram.record(seconds);
    }

    /// Snapshots every registered `(engine, stage)` series at once — the
    /// background sampler diffs consecutive snapshots into windowed
    /// quantile rollups.
    pub fn snapshot_all(&self) -> Vec<((String, &'static str), HistogramSnapshot)> {
        let series = self.series.lock().expect("histogram registry lock");
        series
            .iter()
            .map(|(key, histogram)| (key.clone(), histogram.snapshot()))
            .collect()
    }

    /// The cumulative count at `le` for one series (test/introspection
    /// helper; `le` must be one of the bucket bounds).
    pub fn bucket_count(&self, engine: &str, stage: &'static str, le: f64) -> u64 {
        let series = self.series.lock().expect("histogram registry lock");
        let Some(histogram) = series.get(&(engine.to_string(), stage)) else {
            return 0;
        };
        let cumulative = histogram.cumulative();
        (0..BUCKET_BOUNDS)
            .find(|&k| le <= bound(k))
            .map(|k| cumulative[k])
            .unwrap_or(cumulative[BUCKET_BOUNDS])
    }

    /// Renders the `bishop_stage_seconds` histogram family in Prometheus
    /// text format: one `# HELP`/`# TYPE` header, then every labeled
    /// series' `_bucket`/`_sum`/`_count` samples grouped under it.
    pub fn render_into(&self, out: &mut String) {
        out.push_str(
            "# HELP bishop_stage_seconds Per-stage request latency by engine \
             (log-bucketed; engine=\"none\" before an engine is resolved).\n\
             # TYPE bishop_stage_seconds histogram\n",
        );
        let series = self.series.lock().expect("histogram registry lock");
        for ((engine, stage), histogram) in series.iter() {
            let cumulative = histogram.cumulative();
            for (k, &count) in cumulative.iter().enumerate().take(BUCKET_BOUNDS) {
                out.push_str(&format!(
                    "bishop_stage_seconds_bucket{{engine=\"{engine}\",stage=\"{stage}\",le=\"{}\"}} {count}\n",
                    bound(k)
                ));
            }
            out.push_str(&format!(
                "bishop_stage_seconds_bucket{{engine=\"{engine}\",stage=\"{stage}\",le=\"+Inf\"}} {}\n",
                cumulative[BUCKET_BOUNDS]
            ));
            out.push_str(&format!(
                "bishop_stage_seconds_sum{{engine=\"{engine}\",stage=\"{stage}\"}} {}\n",
                histogram.sum()
            ));
            out.push_str(&format!(
                "bishop_stage_seconds_count{{engine=\"{engine}\",stage=\"{stage}\"}} {}\n",
                histogram.count()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_log_buckets() {
        let histogram = LogHistogram::new();
        histogram.record(0.5e-6); // first bucket (<= 1 µs)
        histogram.record(3e-6); // <= 4 µs
        histogram.record(1e3); // over the last bound: +Inf
        assert_eq!(histogram.count(), 3);
        assert!((histogram.sum() - 1000.0000035).abs() < 1e-6);
        let cumulative = histogram.cumulative();
        assert_eq!(cumulative[0], 1);
        assert_eq!(cumulative[1], 1); // 2 µs bucket unchanged
        assert_eq!(cumulative[2], 2); // 4 µs bucket catches 3 µs
        assert_eq!(cumulative[BUCKET_BOUNDS], 3); // +Inf holds everything
    }

    #[test]
    fn render_groups_series_under_one_family_header() {
        let registry = StageHistograms::new();
        registry.record("simulator", "engine_execute", 0.002);
        registry.record("native", "engine_execute", 0.050);
        registry.record("simulator", "queue_wait", 0.0001);
        let mut out = String::new();
        registry.render_into(&mut out);
        assert_eq!(
            out.matches("# TYPE bishop_stage_seconds histogram").count(),
            1
        );
        assert_eq!(out.matches("# HELP bishop_stage_seconds ").count(), 1);
        assert!(out.contains(
            "bishop_stage_seconds_count{engine=\"simulator\",stage=\"engine_execute\"} 1"
        ));
        assert!(out.contains(
            "bishop_stage_seconds_bucket{engine=\"native\",stage=\"engine_execute\",le=\"+Inf\"} 1"
        ));
        // Cumulative: a 2 ms observation is inside every bucket >= 2.048 ms.
        assert_eq!(
            registry.bucket_count("simulator", "engine_execute", 0.002048),
            1
        );
        assert_eq!(
            registry.bucket_count("simulator", "engine_execute", 0.001024),
            0
        );
    }

    #[test]
    fn quantiles_interpolate_within_log_buckets() {
        let histogram = LogHistogram::new();
        // 100 observations, all exactly on the 1.024 ms bound (bucket 10):
        // every quantile must stay inside that bucket's bounds.
        for _ in 0..100 {
            histogram.record(0.001024);
        }
        let snapshot = histogram.snapshot();
        let lower = bucket_bound(9);
        let upper = bucket_bound(10);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let estimate = snapshot.quantile(q);
            assert!(
                estimate >= lower - f64::EPSILON && estimate <= upper + f64::EPSILON,
                "q={q} estimate {estimate} escaped bucket [{lower}, {upper}]"
            );
        }
        // q=1 is the bucket's upper bound exactly.
        assert!((snapshot.quantile(1.0) - upper).abs() < 1e-12);
    }

    #[test]
    fn quantile_boundary_cases_are_sane() {
        // Empty snapshot reports 0.
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), 0.0);

        // A single observation in the lowest bucket interpolates from 0.
        let one = LogHistogram::new();
        one.record(0.5e-6);
        let snapshot = one.snapshot();
        assert!(snapshot.quantile(0.5) > 0.0);
        assert!(snapshot.quantile(1.0) <= bucket_bound(0) + f64::EPSILON);

        // Observations past the last bound report the last finite bound,
        // never +Inf or NaN.
        let over = LogHistogram::new();
        over.record(1e3);
        let snapshot = over.snapshot();
        let estimate = snapshot.quantile(0.99);
        assert!(estimate.is_finite());
        assert_eq!(estimate, bucket_bound(BUCKET_BOUNDS - 1));

        // Out-of-range q clamps instead of panicking.
        assert!(snapshot.quantile(-1.0).is_finite());
        assert!(snapshot.quantile(2.0).is_finite());
    }

    #[test]
    fn merged_snapshots_stay_monotone_on_adversarial_distributions() {
        // Bimodal: one engine all-fast, one all-slow, one spiking across
        // five decades — after merging, quantiles must still be monotone
        // in q and bracket the recorded values.
        let fast = LogHistogram::new();
        let slow = LogHistogram::new();
        let spiky = LogHistogram::new();
        for i in 0..1000 {
            fast.record(2e-6);
            slow.record(4.0);
            spiky.record(1e-6 * f64::powi(10.0, i % 5));
        }
        let mut merged = HistogramSnapshot::empty();
        merged.merge(&fast.snapshot());
        merged.merge(&slow.snapshot());
        merged.merge(&spiky.snapshot());
        assert_eq!(merged.count(), 3000);
        let quantiles: Vec<f64> = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
            .iter()
            .map(|&q| merged.quantile(q))
            .collect();
        for pair in quantiles.windows(2) {
            assert!(
                pair[0] <= pair[1] + f64::EPSILON,
                "quantiles regressed: {pair:?}"
            );
        }
        // The median sits between the fast mode and the slow mode.
        assert!(merged.quantile(0.5) > 1e-6);
        assert!(merged.quantile(0.5) < 4.0);
        // The tail sees the 4 s mode.
        assert!(merged.quantile(0.99) >= 2.0);
    }

    #[test]
    fn snapshot_diff_isolates_the_window_between_scrapes() {
        let histogram = LogHistogram::new();
        histogram.record(0.001);
        histogram.record(0.002);
        let earlier = histogram.snapshot();
        histogram.record(4.0);
        let window = histogram.snapshot().diff(&earlier);
        assert_eq!(window.count(), 1);
        assert!((window.sum() - 4.0).abs() < 1e-9);
        // The windowed quantile sees only the slow observation.
        assert!(window.quantile(0.5) > 2.0);
        // A mismatched diff saturates to empty instead of wrapping.
        let empty = earlier.diff(&histogram.snapshot());
        assert_eq!(empty.count(), 0);
        assert!(empty.sum() >= 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let registry = Arc::new(StageHistograms::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        registry.record("simulator", "engine_execute", i as f64 * 1e-6);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("recorder thread");
        }
        let mut out = String::new();
        registry.render_into(&mut out);
        assert!(out.contains(
            "bishop_stage_seconds_count{engine=\"simulator\",stage=\"engine_execute\"} 4000"
        ));
    }
}
