//! Log-bucketed latency histograms in Prometheus exposition shape.
//!
//! Buckets are geometric — powers of two from 1 µs to ~67 s — so one fixed
//! 28-bucket layout covers everything from a sub-millisecond simulator
//! batch to a multi-second native flood with bounded relative error, and
//! recording is a couple of atomic adds (no locks, no allocation, no
//! sampling window to overflow — unlike the bounded p50/p95 windows these
//! histograms replace as the `/metrics` source of truth).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Upper bounds (seconds) of the log-spaced buckets: `1e-6 · 2^k` for
/// `k = 0..27`. Everything above the last bound lands in `+Inf`.
pub const BUCKET_BOUNDS: usize = 27;

fn bound(index: usize) -> f64 {
    1e-6 * f64::powi(2.0, index as i32)
}

/// One lock-free histogram: per-bucket counters plus a running sum.
#[derive(Debug)]
pub struct LogHistogram {
    /// `buckets[k]` counts observations `<= bound(k)`, non-cumulative;
    /// the last slot is the `+Inf` overflow bucket.
    buckets: [AtomicU64; BUCKET_BOUNDS + 1],
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Records one observation in seconds (negatives clamp to zero).
    pub fn record(&self, seconds: f64) {
        let seconds = if seconds.is_finite() {
            seconds.max(0.0)
        } else {
            0.0
        };
        let index = (0..BUCKET_BOUNDS)
            .find(|&k| seconds <= bound(k))
            .unwrap_or(BUCKET_BOUNDS);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Lock-free f64 accumulation via bit-cast CAS.
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(current) + seconds;
            match self.sum_bits.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in seconds.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative bucket counts, one per bound plus the `+Inf` bucket.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0;
        self.buckets
            .iter()
            .map(|bucket| {
                total += bucket.load(Ordering::Relaxed);
                total
            })
            .collect()
    }
}

/// The per-`(engine, stage)` histogram registry behind
/// `bishop_stage_seconds` on `/metrics`.
///
/// Label cardinality is bounded by design: engines × stages, with
/// `engine="none"` for spans recorded before a request resolved to a
/// concrete engine (parse failures, pre-route sheds).
#[derive(Debug, Default)]
pub struct StageHistograms {
    series: Mutex<BTreeMap<(String, &'static str), Arc<LogHistogram>>>,
}

impl StageHistograms {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one stage span for an engine (or `"none"` pre-route).
    pub fn record(&self, engine: &str, stage: &'static str, seconds: f64) {
        let histogram = {
            let mut series = self.series.lock().expect("histogram registry lock");
            match series.get(&(engine.to_string(), stage)) {
                Some(histogram) => Arc::clone(histogram),
                None => {
                    let histogram = Arc::new(LogHistogram::new());
                    series.insert((engine.to_string(), stage), Arc::clone(&histogram));
                    histogram
                }
            }
        };
        histogram.record(seconds);
    }

    /// The cumulative count at `le` for one series (test/introspection
    /// helper; `le` must be one of the bucket bounds).
    pub fn bucket_count(&self, engine: &str, stage: &'static str, le: f64) -> u64 {
        let series = self.series.lock().expect("histogram registry lock");
        let Some(histogram) = series.get(&(engine.to_string(), stage)) else {
            return 0;
        };
        let cumulative = histogram.cumulative();
        (0..BUCKET_BOUNDS)
            .find(|&k| le <= bound(k))
            .map(|k| cumulative[k])
            .unwrap_or(cumulative[BUCKET_BOUNDS])
    }

    /// Renders the `bishop_stage_seconds` histogram family in Prometheus
    /// text format: one `# HELP`/`# TYPE` header, then every labeled
    /// series' `_bucket`/`_sum`/`_count` samples grouped under it.
    pub fn render_into(&self, out: &mut String) {
        out.push_str(
            "# HELP bishop_stage_seconds Per-stage request latency by engine \
             (log-bucketed; engine=\"none\" before an engine is resolved).\n\
             # TYPE bishop_stage_seconds histogram\n",
        );
        let series = self.series.lock().expect("histogram registry lock");
        for ((engine, stage), histogram) in series.iter() {
            let cumulative = histogram.cumulative();
            for (k, &count) in cumulative.iter().enumerate().take(BUCKET_BOUNDS) {
                out.push_str(&format!(
                    "bishop_stage_seconds_bucket{{engine=\"{engine}\",stage=\"{stage}\",le=\"{}\"}} {count}\n",
                    bound(k)
                ));
            }
            out.push_str(&format!(
                "bishop_stage_seconds_bucket{{engine=\"{engine}\",stage=\"{stage}\",le=\"+Inf\"}} {}\n",
                cumulative[BUCKET_BOUNDS]
            ));
            out.push_str(&format!(
                "bishop_stage_seconds_sum{{engine=\"{engine}\",stage=\"{stage}\"}} {}\n",
                histogram.sum()
            ));
            out.push_str(&format!(
                "bishop_stage_seconds_count{{engine=\"{engine}\",stage=\"{stage}\"}} {}\n",
                histogram.count()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_log_buckets() {
        let histogram = LogHistogram::new();
        histogram.record(0.5e-6); // first bucket (<= 1 µs)
        histogram.record(3e-6); // <= 4 µs
        histogram.record(1e3); // over the last bound: +Inf
        assert_eq!(histogram.count(), 3);
        assert!((histogram.sum() - 1000.0000035).abs() < 1e-6);
        let cumulative = histogram.cumulative();
        assert_eq!(cumulative[0], 1);
        assert_eq!(cumulative[1], 1); // 2 µs bucket unchanged
        assert_eq!(cumulative[2], 2); // 4 µs bucket catches 3 µs
        assert_eq!(cumulative[BUCKET_BOUNDS], 3); // +Inf holds everything
    }

    #[test]
    fn render_groups_series_under_one_family_header() {
        let registry = StageHistograms::new();
        registry.record("simulator", "engine_execute", 0.002);
        registry.record("native", "engine_execute", 0.050);
        registry.record("simulator", "queue_wait", 0.0001);
        let mut out = String::new();
        registry.render_into(&mut out);
        assert_eq!(
            out.matches("# TYPE bishop_stage_seconds histogram").count(),
            1
        );
        assert_eq!(out.matches("# HELP bishop_stage_seconds ").count(), 1);
        assert!(out.contains(
            "bishop_stage_seconds_count{engine=\"simulator\",stage=\"engine_execute\"} 1"
        ));
        assert!(out.contains(
            "bishop_stage_seconds_bucket{engine=\"native\",stage=\"engine_execute\",le=\"+Inf\"} 1"
        ));
        // Cumulative: a 2 ms observation is inside every bucket >= 2.048 ms.
        assert_eq!(
            registry.bucket_count("simulator", "engine_execute", 0.002048),
            1
        );
        assert_eq!(
            registry.bucket_count("simulator", "engine_execute", 0.001024),
            0
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let registry = Arc::new(StageHistograms::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        registry.record("simulator", "engine_execute", i as f64 * 1e-6);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("recorder thread");
        }
        let mut out = String::new();
        registry.render_into(&mut out);
        assert!(out.contains(
            "bishop_stage_seconds_count{engine=\"simulator\",stage=\"engine_execute\"} 4000"
        ));
    }
}
