//! An always-on sampling wall-clock profiler for domain workers.
//!
//! Each worker (and batcher) thread publishes its *current stage* to one
//! [`StageSlot`] — a single atomic byte, so publishing costs one relaxed
//! store and can run on every transition of the hot loop. A background
//! sampler sweeps the slots at a fixed period and attributes the period to
//! whatever stage each thread was in, accumulating self-time per
//! `engine × thread-kind × stage`. The result is a collapsed-stack-style
//! breakdown ("native workers are 83% engine_execute, simulator workers
//! are 96% idle") with zero instrumentation on the execute path beyond
//! the atomic stores.
//!
//! Sampling error behaves like any wall-clock profiler: stages shorter
//! than the sampling period are seen probabilistically, but their expected
//! share converges on their true share of wall-clock time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// The stages a domain thread publishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum WorkerStage {
    /// Blocked waiting for work.
    Idle = 0,
    /// Forming or dispatching a batch (batcher threads).
    BatchFormation = 1,
    /// Executing a batch on the engine.
    EngineExecute = 2,
    /// Sleeping out a retry backoff.
    RetryBackoff = 3,
    /// Resolving tickets back to waiting clients.
    ResponseFanout = 4,
}

impl WorkerStage {
    /// Stable label used on metrics and in profile JSON.
    pub fn label(self) -> &'static str {
        match self {
            WorkerStage::Idle => "idle",
            WorkerStage::BatchFormation => "batch_formation",
            WorkerStage::EngineExecute => "engine_execute",
            WorkerStage::RetryBackoff => "retry_backoff",
            WorkerStage::ResponseFanout => "response_fanout",
        }
    }

    /// Every stage (the metric label universe).
    pub fn all() -> [WorkerStage; 5] {
        [
            WorkerStage::Idle,
            WorkerStage::BatchFormation,
            WorkerStage::EngineExecute,
            WorkerStage::RetryBackoff,
            WorkerStage::ResponseFanout,
        ]
    }

    fn from_u8(value: u8) -> WorkerStage {
        match value {
            1 => WorkerStage::BatchFormation,
            2 => WorkerStage::EngineExecute,
            3 => WorkerStage::RetryBackoff,
            4 => WorkerStage::ResponseFanout,
            _ => WorkerStage::Idle,
        }
    }
}

/// One thread's published stage: a single atomic byte.
#[derive(Debug, Default)]
pub struct StageSlot {
    stage: AtomicU8,
}

impl StageSlot {
    /// Publishes the thread's current stage (one relaxed store).
    pub fn set(&self, stage: WorkerStage) {
        self.stage.store(stage as u8, Ordering::Relaxed);
    }

    /// The stage last published.
    pub fn get(&self) -> WorkerStage {
        WorkerStage::from_u8(self.stage.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct SlotEntry {
    engine: String,
    kind: &'static str,
    slot: Arc<StageSlot>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    samples: u64,
    seconds: f64,
}

/// The profiler: registered stage slots plus accumulated self-time.
#[derive(Debug, Default)]
pub struct WorkerProfiler {
    slots: Mutex<Vec<SlotEntry>>,
    tallies: Mutex<BTreeMap<(String, &'static str, &'static str), Tally>>,
}

impl WorkerProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one thread's stage slot, starting Idle. `kind` separates
    /// thread roles under one engine (`"worker"` / `"batcher"` /
    /// `"compute"` for intra-batch pool lanes), so an idle batcher can't
    /// dilute the workers' execute share.
    pub fn register(&self, engine: &str, kind: &'static str) -> Arc<StageSlot> {
        let slot = Arc::new(StageSlot::default());
        self.slots
            .lock()
            .expect("profiler slots lock")
            .push(SlotEntry {
                engine: engine.to_string(),
                kind,
                slot: Arc::clone(&slot),
            });
        slot
    }

    /// One sampler sweep: attributes `period_seconds` to every registered
    /// thread's current stage.
    pub fn sample(&self, period_seconds: f64) {
        if period_seconds <= 0.0 || !period_seconds.is_finite() {
            return;
        }
        let slots = self.slots.lock().expect("profiler slots lock");
        let mut tallies = self.tallies.lock().expect("profiler tallies lock");
        for entry in slots.iter() {
            let stage = entry.slot.get().label();
            let tally = tallies
                .entry((entry.engine.clone(), entry.kind, stage))
                .or_default();
            tally.samples += 1;
            tally.seconds += period_seconds;
        }
    }

    /// Clears accumulated tallies (registered slots survive). Lets tests
    /// and benches measure a bounded interval of an always-on profiler.
    pub fn reset(&self) {
        self.tallies.lock().expect("profiler tallies lock").clear();
    }

    /// A point-in-time aggregation of everything sampled so far.
    pub fn report(&self) -> ProfileReport {
        let tallies = self.tallies.lock().expect("profiler tallies lock");
        let mut entries: Vec<ProfileEntry> = Vec::with_capacity(tallies.len());
        let mut group_totals: BTreeMap<(String, &'static str), f64> = BTreeMap::new();
        for ((engine, kind, _), tally) in tallies.iter() {
            *group_totals.entry((engine.clone(), kind)).or_default() += tally.seconds;
        }
        let mut total_samples = 0;
        let mut total_seconds = 0.0;
        for ((engine, kind, stage), tally) in tallies.iter() {
            let group_seconds = group_totals
                .get(&(engine.clone(), *kind))
                .copied()
                .unwrap_or(0.0);
            entries.push(ProfileEntry {
                engine: engine.clone(),
                kind,
                stage,
                samples: tally.samples,
                seconds: tally.seconds,
                fraction: if group_seconds > 0.0 {
                    tally.seconds / group_seconds
                } else {
                    0.0
                },
            });
            total_samples += tally.samples;
            total_seconds += tally.seconds;
        }
        ProfileReport {
            total_samples,
            total_seconds,
            entries,
        }
    }

    /// Renders the `bishop_profile_seconds_total` counter family.
    pub fn render_into(&self, out: &mut String) {
        let report = self.report();
        if report.entries.is_empty() {
            return;
        }
        out.push_str(
            "# HELP bishop_profile_seconds_total Sampled wall-clock self-time per domain \
             thread stage.\n\
             # TYPE bishop_profile_seconds_total counter\n",
        );
        for entry in &report.entries {
            out.push_str(&format!(
                "bishop_profile_seconds_total{{engine=\"{}\",kind=\"{}\",stage=\"{}\"}} {}\n",
                entry.engine, entry.kind, entry.stage, entry.seconds
            ));
        }
    }
}

/// One `engine × kind × stage` row of a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Engine the thread serves (`"shared"` in a non-isolated domain).
    pub engine: String,
    /// Thread role: `"worker"`, `"batcher"`, or `"compute"` (an
    /// intra-batch compute-pool lane).
    pub kind: &'static str,
    /// Stage label.
    pub stage: &'static str,
    /// Sampler sweeps that saw the stage.
    pub samples: u64,
    /// Attributed wall-clock seconds.
    pub seconds: f64,
    /// Share of the `engine × kind` group's total sampled time, `[0, 1]`.
    pub fraction: f64,
}

/// The aggregated profile: totals plus per-stage rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Total samples across all threads.
    pub total_samples: u64,
    /// Total attributed seconds across all threads.
    pub total_seconds: f64,
    /// Rows, sorted by engine, kind, stage.
    pub entries: Vec<ProfileEntry>,
}

impl ProfileReport {
    /// The share of an `engine × kind` group's sampled time spent in
    /// `stage` (0 when the group was never sampled).
    pub fn fraction(&self, engine: &str, kind: &str, stage: &str) -> f64 {
        self.entries
            .iter()
            .find(|e| e.engine == engine && e.kind == kind && e.stage == stage)
            .map(|e| e.fraction)
            .unwrap_or(0.0)
    }

    /// Collapsed-stack lines (`engine/kind;stage samples`), the format
    /// flame-graph tooling ingests.
    pub fn collapsed(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| format!("{}/{};{} {}", e.engine, e.kind, e.stage, e.samples))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_attributes_self_time_per_engine_kind_and_stage() {
        let profiler = WorkerProfiler::new();
        let worker = profiler.register("native", "worker");
        let batcher = profiler.register("native", "batcher");

        worker.set(WorkerStage::EngineExecute);
        for _ in 0..9 {
            profiler.sample(0.01);
        }
        worker.set(WorkerStage::ResponseFanout);
        profiler.sample(0.01);

        let report = profiler.report();
        assert_eq!(report.total_samples, 20); // 2 slots × 10 sweeps
        assert!((report.total_seconds - 0.2).abs() < 1e-9);
        assert!((report.fraction("native", "worker", "engine_execute") - 0.9).abs() < 1e-9);
        assert!((report.fraction("native", "worker", "response_fanout") - 0.1).abs() < 1e-9);
        // The batcher never left Idle and doesn't dilute the worker rows.
        assert_eq!(report.fraction("native", "batcher", "idle"), 1.0);
        assert_eq!(batcher.get(), WorkerStage::Idle);

        let collapsed = report.collapsed();
        assert!(collapsed.contains(&"native/worker;engine_execute 9".to_string()));
        assert!(collapsed.contains(&"native/batcher;idle 10".to_string()));
    }

    #[test]
    fn reset_clears_tallies_but_keeps_slots() {
        let profiler = WorkerProfiler::new();
        let slot = profiler.register("simulator", "worker");
        slot.set(WorkerStage::EngineExecute);
        profiler.sample(0.01);
        assert_eq!(profiler.report().total_samples, 1);
        profiler.reset();
        assert_eq!(profiler.report().total_samples, 0);
        profiler.sample(0.01);
        assert_eq!(profiler.report().total_samples, 1);
    }

    #[test]
    fn render_emits_one_counter_family() {
        let profiler = WorkerProfiler::new();
        profiler.register("simulator", "worker");
        // Empty: renders nothing, not an empty family header.
        let mut out = String::new();
        profiler.render_into(&mut out);
        assert!(out.is_empty());
        profiler.sample(0.25);
        profiler.render_into(&mut out);
        assert_eq!(
            out.matches("# TYPE bishop_profile_seconds_total counter")
                .count(),
            1
        );
        assert!(out.contains(
            "bishop_profile_seconds_total{engine=\"simulator\",kind=\"worker\",stage=\"idle\"} 0.25"
        ));
    }

    #[test]
    fn stage_labels_and_roundtrip_are_stable() {
        for stage in WorkerStage::all() {
            assert_eq!(WorkerStage::from_u8(stage as u8), stage);
        }
        let labels: Vec<&str> = WorkerStage::all().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "idle",
                "batch_formation",
                "engine_execute",
                "retry_backoff",
                "response_fanout"
            ]
        );
        // Unknown bytes degrade to Idle instead of panicking.
        assert_eq!(WorkerStage::from_u8(200), WorkerStage::Idle);
    }
}
