//! # bishop-neuron
//!
//! Leaky Integrate-and-Fire (LIF) neuron dynamics, surrogate gradients, and
//! input spike encodings for the Bishop spiking-transformer reproduction.
//!
//! The paper (§2.1, Eq. 1–2) uses the discretised LIF model
//!
//! ```text
//! V_m[t_k] = V_m[t_k-1] + I[t_k] - V_leak
//! S[t_k]   = 1 and V_m[t_k] := 0      if V_m[t_k] > V_th
//! S[t_k]   = 0 and V_m unchanged      otherwise
//! ```
//!
//! Every linear/projection/MLP layer of a spiking transformer is followed by
//! an LIF layer that converts multi-bit synaptic integration back into binary
//! spikes, which is what keeps all tensor operands of the attention block
//! binary and lets the Bishop hardware replace multipliers with AND/select
//! accumulators.
//!
//! ```
//! use bishop_neuron::{LifConfig, LifNeuron};
//!
//! let mut neuron = LifNeuron::new(LifConfig::default());
//! // Sub-threshold input accumulates, then the neuron fires and resets.
//! assert!(!neuron.step(0.6));
//! assert!(neuron.step(0.6));
//! assert_eq!(neuron.membrane_potential(), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod lif;
pub mod surrogate;

pub use encode::{direct_encode, rate_encode};
pub use lif::{lif_over_time, LifConfig, LifLayer, LifNeuron};
pub use surrogate::SurrogateKind;
