//! Surrogate gradients for training through the non-differentiable spike
//! function.
//!
//! Direct training of spiking transformers (and the paper's BSA / ECP-aware
//! training pipelines) relies on backpropagation-through-time with a
//! *surrogate* derivative substituted for the Heaviside step at the firing
//! threshold. `bishop-train` uses these functions.

/// The family of surrogate derivative used for `dS/dV` at the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SurrogateKind {
    /// Rectangular window: `1/(2w)` when `|V - V_th| < w`, else 0. The
    /// default used by the Spikformer/TET training recipes.
    #[default]
    Rectangular,
    /// Derivative of a scaled sigmoid centred at the threshold.
    Sigmoid,
    /// Derivative of a scaled arctangent centred at the threshold.
    Atan,
}

impl SurrogateKind {
    /// Evaluates the surrogate derivative at membrane potential `v_mem` for
    /// a threshold `v_threshold` and sharpness/width parameter `alpha`.
    ///
    /// For all kinds the function is non-negative, symmetric around the
    /// threshold, and maximal exactly at the threshold.
    pub fn derivative(&self, v_mem: f32, v_threshold: f32, alpha: f32) -> f32 {
        assert!(alpha > 0.0, "surrogate sharpness must be positive");
        let x = v_mem - v_threshold;
        match self {
            SurrogateKind::Rectangular => {
                if x.abs() < alpha {
                    1.0 / (2.0 * alpha)
                } else {
                    0.0
                }
            }
            SurrogateKind::Sigmoid => {
                let s = 1.0 / (1.0 + (-alpha * x).exp());
                alpha * s * (1.0 - s)
            }
            SurrogateKind::Atan => {
                let denom = 1.0 + (std::f32::consts::PI * alpha * x).powi(2);
                alpha / (2.0 * denom)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [SurrogateKind; 3] = [
        SurrogateKind::Rectangular,
        SurrogateKind::Sigmoid,
        SurrogateKind::Atan,
    ];

    #[test]
    fn maximal_at_threshold() {
        for kind in KINDS {
            let at = kind.derivative(1.0, 1.0, 1.0);
            let away = kind.derivative(3.0, 1.0, 1.0);
            assert!(at >= away, "{kind:?} should peak at the threshold");
            assert!(at > 0.0);
        }
    }

    #[test]
    fn symmetric_around_threshold() {
        for kind in KINDS {
            let above = kind.derivative(1.3, 1.0, 1.0);
            let below = kind.derivative(0.7, 1.0, 1.0);
            assert!(
                (above - below).abs() < 1e-6,
                "{kind:?} should be symmetric: {above} vs {below}"
            );
        }
    }

    #[test]
    fn non_negative_everywhere() {
        for kind in KINDS {
            for i in -20..=20 {
                let v = i as f32 * 0.25;
                assert!(kind.derivative(v, 1.0, 2.0) >= 0.0);
            }
        }
    }

    #[test]
    fn rectangular_window_is_compactly_supported() {
        let kind = SurrogateKind::Rectangular;
        assert_eq!(kind.derivative(2.5, 1.0, 1.0), 0.0);
        assert_eq!(kind.derivative(1.5, 1.0, 1.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sharpness_rejected() {
        SurrogateKind::Rectangular.derivative(0.0, 1.0, 0.0);
    }

    #[test]
    fn default_is_rectangular() {
        assert_eq!(SurrogateKind::default(), SurrogateKind::Rectangular);
    }
}
