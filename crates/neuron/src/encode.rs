//! Input spike encodings.
//!
//! Static images (CIFAR/ImageNet) enter a spiking transformer either through
//! *rate encoding* (a pixel's intensity becomes the Bernoulli firing
//! probability at every timestep) or *direct encoding* (the first
//! convolutional/tokenizer layer receives the analog value and its LIF layer
//! produces the first spikes). Dynamic-vision-sensor data (DVS-Gesture) is
//! natively spike-formed. These helpers produce the tokenised `T × N × D`
//! input spike tensors used by the functional model and the synthetic
//! training tasks.

use bishop_spiketensor::{DenseMatrix, SpikeTensor, TensorShape};
use rand::Rng;

/// Rate-encodes an `N × D` analog token matrix into `timesteps` Bernoulli
/// spike planes. Values are interpreted as firing probabilities and clamped
/// to `[0, 1]`.
///
/// ```
/// use bishop_neuron::rate_encode;
/// use bishop_spiketensor::DenseMatrix;
/// use rand::SeedableRng;
///
/// let tokens = DenseMatrix::from_rows(&[vec![0.0, 1.0]]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let spikes = rate_encode(&tokens, 8, &mut rng);
/// assert_eq!(spikes.feature_count(0), 0);
/// assert_eq!(spikes.feature_count(1), 8);
/// ```
pub fn rate_encode<R: Rng>(tokens: &DenseMatrix, timesteps: usize, rng: &mut R) -> SpikeTensor {
    assert!(timesteps > 0, "need at least one timestep");
    let shape = TensorShape::new(timesteps, tokens.rows(), tokens.cols());
    SpikeTensor::from_fn(shape, |_, n, d| {
        let p = f64::from(tokens.get(n, d)).clamp(0.0, 1.0);
        p > 0.0 && rng.gen_bool(p)
    })
}

/// Direct (threshold) encoding: the analog token matrix is repeated at every
/// timestep and a position spikes when its value exceeds `threshold`. This is
/// deterministic and models the "direct input encoding" used by low-latency
/// SNNs (Diet-SNN et al.).
pub fn direct_encode(tokens: &DenseMatrix, timesteps: usize, threshold: f32) -> SpikeTensor {
    assert!(timesteps > 0, "need at least one timestep");
    let shape = TensorShape::new(timesteps, tokens.rows(), tokens.cols());
    SpikeTensor::from_fn(shape, |_, n, d| tokens.get(n, d) > threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rate_encode_matches_probabilities_statistically() {
        let tokens = DenseMatrix::from_fn(8, 8, |_, _| 0.25);
        let mut rng = StdRng::seed_from_u64(3);
        let spikes = rate_encode(&tokens, 64, &mut rng);
        assert!((spikes.density() - 0.25).abs() < 0.03);
    }

    #[test]
    fn rate_encode_clamps_out_of_range_values() {
        let tokens = DenseMatrix::from_rows(&[vec![-0.5, 2.0]]);
        let mut rng = StdRng::seed_from_u64(3);
        let spikes = rate_encode(&tokens, 16, &mut rng);
        assert_eq!(spikes.feature_count(0), 0);
        assert_eq!(spikes.feature_count(1), 16);
    }

    #[test]
    fn direct_encode_is_deterministic_threshold() {
        let tokens = DenseMatrix::from_rows(&[vec![0.1, 0.9], vec![0.6, 0.4]]);
        let spikes = direct_encode(&tokens, 3, 0.5);
        assert_eq!(spikes.shape(), TensorShape::new(3, 2, 2));
        for t in 0..3 {
            assert!(!spikes.get(t, 0, 0));
            assert!(spikes.get(t, 0, 1));
            assert!(spikes.get(t, 1, 0));
            assert!(!spikes.get(t, 1, 1));
        }
    }

    #[test]
    #[should_panic(expected = "at least one timestep")]
    fn zero_timesteps_rejected() {
        direct_encode(&DenseMatrix::zeros(1, 1), 0, 0.5);
    }
}
