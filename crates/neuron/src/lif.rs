//! Leaky Integrate-and-Fire dynamics (Eq. 1–2 of the paper).

use bishop_spiketensor::{DenseMatrix, SpikeTensor, TensorShape};

/// Parameters of the discretised LIF neuron.
///
/// The defaults follow the common spiking-transformer setting: unit firing
/// threshold, no leak (`V_leak = 0` is standard for the Spikformer family the
/// paper builds on), hard reset to zero on firing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifConfig {
    /// Firing threshold `V_th`.
    pub v_threshold: f32,
    /// Constant leak subtracted from the membrane potential each step.
    pub v_leak: f32,
    /// Potential the membrane is reset to after a spike.
    pub v_reset: f32,
    /// Lower clamp for the membrane potential (prevents unbounded negative
    /// drift when inputs are inhibitory for long stretches).
    pub v_floor: f32,
}

impl Default for LifConfig {
    fn default() -> Self {
        Self {
            v_threshold: 1.0,
            v_leak: 0.0,
            v_reset: 0.0,
            v_floor: -4.0,
        }
    }
}

impl LifConfig {
    /// Creates a config with the given threshold and leak, hard reset to 0.
    pub fn new(v_threshold: f32, v_leak: f32) -> Self {
        Self {
            v_threshold,
            v_leak,
            ..Self::default()
        }
    }
}

/// A single LIF neuron holding its membrane potential between timesteps.
#[derive(Debug, Clone, PartialEq)]
pub struct LifNeuron {
    config: LifConfig,
    v_mem: f32,
}

impl LifNeuron {
    /// Creates a neuron at the reset potential.
    pub fn new(config: LifConfig) -> Self {
        Self {
            config,
            v_mem: config.v_reset,
        }
    }

    /// The neuron's configuration.
    pub fn config(&self) -> LifConfig {
        self.config
    }

    /// Current membrane potential.
    pub fn membrane_potential(&self) -> f32 {
        self.v_mem
    }

    /// Integrates one timestep of synaptic input and returns whether the
    /// neuron fired.
    pub fn step(&mut self, synaptic_input: f32) -> bool {
        self.v_mem = (self.v_mem + synaptic_input - self.config.v_leak).max(self.config.v_floor);
        if self.v_mem > self.config.v_threshold {
            self.v_mem = self.config.v_reset;
            true
        } else {
            false
        }
    }

    /// Resets the membrane potential to the reset value.
    pub fn reset(&mut self) {
        self.v_mem = self.config.v_reset;
    }
}

/// An LIF layer covering `units` neurons updated in lock step.
///
/// The Bishop spike generator processes up to 512 such neurons in parallel;
/// this type is the functional model the hardware model is validated against.
#[derive(Debug, Clone, PartialEq)]
pub struct LifLayer {
    config: LifConfig,
    v_mem: Vec<f32>,
}

impl LifLayer {
    /// Creates a layer of `units` neurons at the reset potential.
    pub fn new(units: usize, config: LifConfig) -> Self {
        assert!(units > 0, "an LIF layer needs at least one neuron");
        Self {
            config,
            v_mem: vec![config.v_reset; units],
        }
    }

    /// Resumes a layer from previously exported membrane potentials.
    ///
    /// This is the state-import half of stateful (session) serving: a layer
    /// parked between requests is reconstructed bit-identically from the
    /// potentials [`LifLayer::membrane_potentials`] exported, so stepping it
    /// continues the exact trajectory the exporting layer was on.
    ///
    /// # Panics
    ///
    /// Panics if `v_mem` is empty.
    pub fn from_potentials(config: LifConfig, v_mem: Vec<f32>) -> Self {
        assert!(!v_mem.is_empty(), "an LIF layer needs at least one neuron");
        Self { config, v_mem }
    }

    /// Consumes the layer, returning its membrane potentials (the state-export
    /// half of stateful serving).
    pub fn into_potentials(self) -> Vec<f32> {
        self.v_mem
    }

    /// Number of neurons in the layer.
    pub fn units(&self) -> usize {
        self.v_mem.len()
    }

    /// The layer's configuration.
    pub fn config(&self) -> LifConfig {
        self.config
    }

    /// Immutable view of all membrane potentials.
    pub fn membrane_potentials(&self) -> &[f32] {
        &self.v_mem
    }

    /// Integrates one timestep of per-neuron synaptic input and returns the
    /// binary firing vector.
    ///
    /// # Panics
    ///
    /// Panics if `synaptic_input.len()` differs from the number of neurons.
    pub fn step(&mut self, synaptic_input: &[f32]) -> Vec<bool> {
        assert_eq!(
            synaptic_input.len(),
            self.v_mem.len(),
            "synaptic input length {} does not match {} neurons",
            synaptic_input.len(),
            self.v_mem.len()
        );
        let mut spikes = vec![false; self.v_mem.len()];
        for (i, (&input, v)) in synaptic_input.iter().zip(self.v_mem.iter_mut()).enumerate() {
            *v = (*v + input - self.config.v_leak).max(self.config.v_floor);
            if *v > self.config.v_threshold {
                *v = self.config.v_reset;
                spikes[i] = true;
            }
        }
        spikes
    }

    /// Resets all membrane potentials.
    pub fn reset(&mut self) {
        for v in &mut self.v_mem {
            *v = self.config.v_reset;
        }
    }
}

/// Applies an LIF layer over a time series of synaptic-integration matrices.
///
/// `inputs[t]` is the `N × D` synaptic integration produced at timestep `t`
/// (e.g. `X[t] · W_Q` for the query projection). Every `(token, feature)`
/// position has its own membrane potential that persists across timesteps.
/// The result is the binary `T × N × D` spike tensor that downstream layers
/// and the accelerator consume.
///
/// # Panics
///
/// Panics if `inputs` is empty or the matrices have inconsistent dimensions.
///
/// ```
/// use bishop_neuron::{lif_over_time, LifConfig};
/// use bishop_spiketensor::DenseMatrix;
///
/// let step = DenseMatrix::from_rows(&[vec![0.6, 1.2]]);
/// let spikes = lif_over_time(&[step.clone(), step], LifConfig::default());
/// // Feature 1 fires on both steps (1.2 > 1.0); feature 0 only on the second
/// // step once its membrane potential has accumulated to 1.2.
/// assert!(!spikes.get(0, 0, 0));
/// assert!(spikes.get(1, 0, 0));
/// assert!(spikes.get(0, 0, 1));
/// ```
pub fn lif_over_time(inputs: &[DenseMatrix], config: LifConfig) -> SpikeTensor {
    assert!(!inputs.is_empty(), "need at least one timestep of input");
    let tokens = inputs[0].rows();
    let features = inputs[0].cols();
    assert!(
        inputs
            .iter()
            .all(|m| m.rows() == tokens && m.cols() == features),
        "all timestep matrices must have identical dimensions"
    );
    let shape = TensorShape::new(inputs.len(), tokens, features);
    let mut spikes = SpikeTensor::zeros(shape);
    let mut layer = LifLayer::new(tokens * features, config);
    let mut flat = vec![0.0f32; tokens * features];
    for (t, input) in inputs.iter().enumerate() {
        for n in 0..tokens {
            for d in 0..features {
                flat[n * features + d] = input.get(n, d);
            }
        }
        let fired = layer.step(&flat);
        for n in 0..tokens {
            for d in 0..features {
                if fired[n * features + d] {
                    spikes.set(t, n, d, true);
                }
            }
        }
    }
    spikes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neuron_accumulates_and_resets() {
        let mut neuron = LifNeuron::new(LifConfig::default());
        assert!(!neuron.step(0.4));
        assert!(!neuron.step(0.4));
        assert!(neuron.step(0.4));
        assert_eq!(neuron.membrane_potential(), 0.0);
    }

    #[test]
    fn leak_slows_down_firing() {
        let mut leaky = LifNeuron::new(LifConfig::new(1.0, 0.2));
        let mut not_leaky = LifNeuron::new(LifConfig::new(1.0, 0.0));
        let mut leaky_spikes = 0;
        let mut plain_spikes = 0;
        for _ in 0..20 {
            if leaky.step(0.4) {
                leaky_spikes += 1;
            }
            if not_leaky.step(0.4) {
                plain_spikes += 1;
            }
        }
        assert!(leaky_spikes < plain_spikes);
    }

    #[test]
    fn membrane_floor_prevents_unbounded_negative_drift() {
        let mut neuron = LifNeuron::new(LifConfig::default());
        for _ in 0..100 {
            neuron.step(-10.0);
        }
        assert!(neuron.membrane_potential() >= LifConfig::default().v_floor);
        // A strong excitatory input can still trigger a spike promptly.
        assert!(neuron.step(10.0));
    }

    #[test]
    fn strict_threshold_comparison() {
        // The paper uses a strict `>` comparison: input exactly at threshold
        // does not fire.
        let mut neuron = LifNeuron::new(LifConfig::default());
        assert!(!neuron.step(1.0));
        assert!(neuron.step(0.5));
    }

    #[test]
    fn layer_steps_neurons_independently() {
        let mut layer = LifLayer::new(3, LifConfig::default());
        let out = layer.step(&[1.5, 0.2, 0.0]);
        assert_eq!(out, vec![true, false, false]);
        let out = layer.step(&[0.0, 0.9, 0.0]);
        assert_eq!(out, vec![false, true, false]);
        assert_eq!(layer.units(), 3);
    }

    #[test]
    fn layer_reset_clears_state() {
        let mut layer = LifLayer::new(2, LifConfig::default());
        layer.step(&[0.9, 0.9]);
        layer.reset();
        assert_eq!(layer.membrane_potentials(), &[0.0, 0.0]);
        // After reset the neuron must accumulate from scratch again.
        assert_eq!(layer.step(&[0.9, 0.9]), vec![false, false]);
    }

    #[test]
    fn resumed_layer_continues_the_exact_trajectory() {
        // Stepping a fresh layer twice must equal stepping once, exporting
        // the potentials, resuming, and stepping the resumed layer once.
        let mut reference = LifLayer::new(3, LifConfig::default());
        reference.step(&[0.6, 0.3, 0.9]);
        let mut resumed =
            LifLayer::from_potentials(reference.config(), reference.membrane_potentials().to_vec());
        let a = reference.step(&[0.5, 0.5, 0.5]);
        let b = resumed.step(&[0.5, 0.5, 0.5]);
        assert_eq!(a, b);
        assert_eq!(
            reference.membrane_potentials(),
            resumed.membrane_potentials()
        );
        assert_eq!(resumed.into_potentials(), reference.membrane_potentials());
    }

    #[test]
    #[should_panic(expected = "at least one neuron")]
    fn resume_rejects_empty_state() {
        LifLayer::from_potentials(LifConfig::default(), Vec::new());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn layer_rejects_wrong_input_length() {
        let mut layer = LifLayer::new(2, LifConfig::default());
        layer.step(&[1.0]);
    }

    #[test]
    fn lif_over_time_keeps_state_across_timesteps() {
        let step = DenseMatrix::from_rows(&[vec![0.6], vec![1.2]]);
        let spikes = lif_over_time(&[step.clone(), step.clone(), step], LifConfig::default());
        // Token 1 (input 1.2) fires every step; token 0 (0.6) fires on steps
        // 1 and then needs to re-accumulate.
        assert!(!spikes.get(0, 0, 0));
        assert!(spikes.get(1, 0, 0));
        assert!(!spikes.get(2, 0, 0));
        assert!(spikes.get(0, 1, 0));
        assert!(spikes.get(1, 1, 0));
        assert!(spikes.get(2, 1, 0));
    }

    #[test]
    fn lif_over_time_shape_matches_inputs() {
        let step = DenseMatrix::zeros(4, 8);
        let spikes = lif_over_time(&[step.clone(), step], LifConfig::default());
        assert_eq!(spikes.shape(), TensorShape::new(2, 4, 8));
        assert_eq!(spikes.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one timestep")]
    fn lif_over_time_rejects_empty_input() {
        lif_over_time(&[], LifConfig::default());
    }
}
