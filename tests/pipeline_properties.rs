//! Property-based tests over the core invariants of the pipeline
//! (bundle tagging, stratification, ECP's error bound, simulator sanity).

use bishop::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

fn arbitrary_tensor(
    max_t: usize,
    max_n: usize,
    max_d: usize,
) -> impl Strategy<Value = SpikeTensor> {
    (1..=max_t, 1..=max_n, 1..=max_d, 0.0f64..0.5, any::<u64>()).prop_map(
        |(t, n, d, density, seed)| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            SpikeTensor::from_fn(TensorShape::new(t, n, d), |_, _, _| {
                use rand::Rng;
                rng.gen_bool(density)
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bundle_tags_conserve_spike_count(
        tensor in arbitrary_tensor(6, 16, 12),
        bst in 1usize..4,
        bsn in 1usize..6,
    ) {
        let tags = TtbTags::from_tensor(&tensor, BundleShape::new(bst, bsn));
        prop_assert_eq!(tags.tag_sum(), tensor.count_ones() as u64);
        prop_assert!(tags.active_bundles() <= tags.total_bundles());
        prop_assert!(tags.active_bundles() <= tensor.count_ones());
    }

    #[test]
    fn stratifier_always_produces_a_partition(
        tensor in arbitrary_tensor(6, 16, 12),
        threshold in 0usize..10,
    ) {
        let split = Stratifier::new(threshold).stratify(&tensor, BundleShape::default());
        prop_assert!(split.is_partition(tensor.shape().features));
        prop_assert_eq!(split.dense_spikes + split.sparse_spikes, tensor.count_ones());
    }

    #[test]
    fn ecp_error_bound_holds_for_arbitrary_tensors(
        q in arbitrary_tensor(4, 12, 10),
        theta in 1u32..8,
        seed in any::<u64>(),
    ) {
        // Build K/V with the same shape as Q.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let k = SpikeTensor::from_fn(q.shape(), |_, _, _| {
            use rand::Rng;
            rng.gen_bool(0.2)
        });
        let v = SpikeTensor::from_fn(q.shape(), |_, _, _| {
            use rand::Rng;
            rng.gen_bool(0.3)
        });
        let config = EcpConfig::uniform(theta, BundleShape::new(2, 2));
        let result = ecp::apply(&q, &k, &v, config);
        let error = ecp::max_score_error(&q, &k, &result.pruned_q, &result.pruned_k);
        prop_assert!(error < theta.max(1), "error {} >= bound {}", error, theta);
        // Pruning only removes spikes.
        prop_assert!(result.pruned_q.count_ones() <= q.count_ones());
        prop_assert!(result.pruned_k.count_ones() <= k.count_ones());
    }

    #[test]
    fn ecp_retention_is_monotone_in_threshold(
        q in arbitrary_tensor(4, 12, 10),
    ) {
        let k = q.clone();
        let v = q.clone();
        let mut previous = f64::INFINITY;
        for theta in [0u32, 1, 2, 4, 8, 16] {
            let result = ecp::apply(&q, &k, &v, EcpConfig::uniform(theta, BundleShape::new(2, 2)));
            let retained = result.q_retention() + result.k_retention();
            prop_assert!(retained <= previous + 1e-12);
            previous = retained;
        }
    }

    #[test]
    fn bsa_effect_never_creates_spikes_and_respects_fractions(
        tensor in arbitrary_tensor(4, 12, 10),
        keep in 0.1f64..1.0,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let shaped = BsaEffect::new(keep, keep).apply(&tensor, BundleShape::default(), &mut rng);
        prop_assert!(shaped.count_ones() <= tensor.count_ones());
        for (t, n, d) in shaped.iter_active() {
            prop_assert!(tensor.get(t, n, d));
        }
    }
}

proptest! {
    // Simulator-level properties use fewer cases: each case builds and
    // simulates a small workload.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulated_cost_grows_with_density(
        low in 0.02f64..0.08,
        seed in any::<u64>(),
    ) {
        let high = low * 4.0;
        let config = ModelConfig::new("prop", DatasetKind::Cifar10, 1, 4, 16, 32, 2);
        let mut rng_low = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rng_high = rand::rngs::StdRng::seed_from_u64(seed);
        let sparse = ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(low), &mut rng_low);
        let dense = ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(high), &mut rng_high);
        let simulator = BishopSimulator::new(BishopConfig::default());
        let sparse_run = simulator.simulate(&sparse, &SimOptions::baseline());
        let dense_run = simulator.simulate(&dense, &SimOptions::baseline());
        prop_assert!(dense_run.total_energy_pj() >= sparse_run.total_energy_pj());
    }

    #[test]
    fn ecp_never_makes_the_accelerator_slower(
        density in 0.03f64..0.2,
        theta in 1u32..10,
        seed in any::<u64>(),
    ) {
        let config = ModelConfig::new("prop-ecp", DatasetKind::ImageNet100, 1, 4, 32, 32, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let workload = ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(density), &mut rng);
        let simulator = BishopSimulator::new(BishopConfig::default());
        let baseline = simulator.simulate(&workload, &SimOptions::baseline());
        let pruned = simulator.simulate(&workload, &SimOptions::with_ecp(theta));
        prop_assert!(pruned.total_cycles() <= baseline.total_cycles());
        prop_assert!(pruned.total_energy_pj() <= baseline.total_energy_pj() + 1e-6);
    }
}
