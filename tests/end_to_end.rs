//! Cross-crate integration tests: functional model → workload → bundling →
//! stratification → accelerator simulation, compared across Bishop, PTB and
//! the edge GPU.

use bishop::prelude::*;
use rand::SeedableRng;

fn calibrated_workload(config: &ModelConfig, regime: TrainingRegime, seed: u64) -> ModelWorkload {
    let calibration = DatasetCalibration::for_model(config);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    ModelWorkload::synthetic(config, calibration.spec(regime), &mut rng)
}

fn quick_model() -> ModelConfig {
    ModelConfig::new("integration", DatasetKind::ImageNet100, 2, 4, 64, 128, 4)
}

#[test]
fn functional_inference_workload_can_be_simulated_on_both_accelerators() {
    let config = ModelConfig::new("func", DatasetKind::Cifar10, 2, 3, 16, 32, 2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let model = SpikingTransformer::random(&config, 24, 10, &mut rng);
    let patches = DenseMatrix::random_uniform(config.tokens, 24, 0.8, &mut rng);
    let inference = model.infer(&patches);

    // The captured workload runs on both simulators and produces layer-for-
    // layer comparable metrics.
    let bishop = BishopSimulator::new(BishopConfig::default())
        .simulate(&inference.workload, &SimOptions::baseline());
    let ptb = PtbSimulator::new(PtbConfig::default()).simulate(&inference.workload);
    assert_eq!(bishop.layers.len(), inference.workload.layers().len());
    assert_eq!(ptb.layers.len(), bishop.layers.len());
    for (a, b) in bishop.layers.iter().zip(&ptb.layers) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.group, b.group);
    }
    assert!(bishop.total_latency_seconds() > 0.0);
}

#[test]
fn full_stack_ordering_gpu_ptb_bishop_variants() {
    let config = quick_model();
    let calibration = DatasetCalibration::for_model(&config);
    let baseline = calibrated_workload(&config, TrainingRegime::Baseline, 3);
    let bsa = calibrated_workload(&config, TrainingRegime::Bsa, 3);

    let gpu = EdgeGpuModel::jetson_nano().simulate(&config);
    let ptb = PtbSimulator::new(PtbConfig::default()).simulate(&baseline);
    let simulator = BishopSimulator::new(BishopConfig::default());
    let bishop = simulator.simulate(&baseline, &SimOptions::baseline());
    let bishop_bsa = simulator.simulate(&bsa, &SimOptions::baseline());
    let bishop_full = simulator.simulate(&bsa, &SimOptions::with_ecp(calibration.ecp_threshold));

    // Latency ordering: GPU slowest, then PTB, then the Bishop variants in
    // improving order.
    assert!(gpu.latency_seconds > ptb.total_latency_seconds());
    assert!(ptb.total_latency_seconds() > bishop.total_latency_seconds());
    assert!(bishop_bsa.total_latency_seconds() <= bishop.total_latency_seconds() * 1.02);
    assert!(bishop_full.total_latency_seconds() <= bishop_bsa.total_latency_seconds() * 1.02);

    // Energy ordering follows the same trend.
    assert!(ptb.total_energy_pj() > bishop.total_energy_pj());
    assert!(bishop_full.total_energy_pj() <= bishop_bsa.total_energy_pj() * 1.02);
}

#[test]
fn stratifier_and_ecp_compose_on_real_traces() {
    let config = quick_model();
    let workload = calibrated_workload(&config, TrainingRegime::Bsa, 9);
    let bundle = BundleShape::default();

    for layer in workload.projection_layers() {
        let tags = TtbTags::from_tensor(&layer.input, bundle);
        let split = Stratifier::new(2).stratify_tags(&layer.input, &tags);
        assert!(split.is_partition(layer.input.shape().features));
        assert_eq!(
            split.dense_spikes + split.sparse_spikes,
            layer.input.count_ones()
        );
    }
    for layer in workload.attention_layers() {
        let result = ecp::apply(&layer.q, &layer.k, &layer.v, EcpConfig::uniform(6, bundle));
        assert!(result.q_retention() <= 1.0 && result.k_retention() <= 1.0);
        assert!(result.pruned_q.count_ones() <= layer.q.count_ones());
        assert!(result.pruned_v.count_ones() <= layer.v.count_ones());
    }
}

#[test]
fn bsa_workloads_are_cheaper_to_execute() {
    let config = quick_model();
    let baseline = calibrated_workload(&config, TrainingRegime::Baseline, 21);
    let bsa = calibrated_workload(&config, TrainingRegime::Bsa, 21);
    let simulator = BishopSimulator::new(BishopConfig::default());
    let baseline_run = simulator.simulate(&baseline, &SimOptions::baseline());
    let bsa_run = simulator.simulate(&bsa, &SimOptions::baseline());
    assert!(bsa_run.total_energy_pj() < baseline_run.total_energy_pj());
    assert!(bsa_run.total_cycles() <= baseline_run.total_cycles());
}

#[test]
fn bundle_shape_choice_affects_but_does_not_break_simulation() {
    let config = quick_model();
    let workload = calibrated_workload(&config, TrainingRegime::Baseline, 33);
    for (bst, bsn) in [(1, 1), (2, 4), (4, 8)] {
        let run =
            BishopSimulator::new(BishopConfig::default().with_bundle(BundleShape::new(bst, bsn)))
                .simulate(&workload, &SimOptions::baseline());
        assert!(run.total_latency_seconds() > 0.0);
        assert!(run.total_energy_mj() > 0.0);
    }
}

#[test]
fn area_and_power_budgets_are_iso_between_bishop_and_ptb() {
    let bishop = AreaPowerBreakdown::bishop_28nm();
    let ptb = AreaPowerBreakdown::ptb_28nm();
    assert!((bishop.total_area_mm2() / ptb.total_area_mm2() - 1.0).abs() < 0.1);
    assert!((bishop.total_power_mw() / ptb.total_power_mw() - 1.0).abs() < 0.1);
}
