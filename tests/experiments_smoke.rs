//! Smoke tests for the experiment harness: every report can be generated at
//! the quick scale and contains the expected sections.

use bishop::experiments::{self, ExperimentScale};

#[test]
fn static_reports_render() {
    assert!(experiments::table2_models::report().contains("Model 5"));
    assert!(experiments::fig03_flops::report().contains("Attention + MLP"));
    assert!(experiments::fig17_breakdown::report().contains("TTB attention core"));
}

#[test]
fn workload_driven_reports_render_at_quick_scale() {
    let scale = ExperimentScale::Quick;
    assert!(experiments::fig05_bundle_distribution::report(scale).contains("Silent features"));
    assert!(experiments::fig06_stratified_density::report(scale).contains("stratified dense"));
    assert!(experiments::fig15_stratification::report(scale).contains("EDP vs PTB"));
    assert!(experiments::fig16_bundle_volume::report(scale).contains("(2, 4)"));
}

#[test]
fn comparison_reports_mention_both_accelerators() {
    let scale = ExperimentScale::Quick;
    let fig11 = experiments::fig11_layerwise::report(scale);
    assert!(fig11.contains("PTB latency") && fig11.contains("Bishop latency"));
    let fig12 = experiments::fig12_13_end_to_end::report(scale);
    assert!(fig12.contains("Bishop vs PTB"));
    assert!(fig12.contains("Fig. 13"));
}
