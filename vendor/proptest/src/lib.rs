//! Vendored, dependency-free reimplementation of the subset of the
//! `proptest` API used by this workspace.
//!
//! The build environment has no access to a crates registry, so this crate
//! stands in for upstream proptest as a path dependency. It keeps the same
//! source-level API (`proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! [`Strategy`] with `prop_map`, `any::<T>()`, numeric-range strategies,
//! [`ProptestConfig`]) and runs each property for the configured number of
//! deterministic pseudo-random cases. Failing cases are reported with their
//! case index and generator seed; input *shrinking* is intentionally not
//! implemented — the seed in the failure message reproduces the case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases executed per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of pseudo-random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the produced values through `map`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.map)(self.strategy.sample(rng))
    }
}

impl<T: SampleUniform + Debug> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Debug> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(-1.0e9..1.0e9)
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Drives one property for `config.cases` cases. Called by the `proptest!`
/// macro; not intended for direct use.
pub fn run_property<S, F>(name: &str, config: ProptestConfig, strategy: S, property: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    use rand::SeedableRng;
    for case in 0..config.cases {
        // Deterministic per-case seed: reproducible without a seed file.
        let seed =
            0x9E3779B97F4A7C15u64.wrapping_mul(u64::from(case).wrapping_add(1)) ^ name.len() as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let input = strategy.sample(&mut rng);
        if let Err(message) = property(input) {
            panic!("property '{name}' failed at case {case} (seed {seed:#x}): {message}");
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err(format!(
                "assertion failed: {} == {} (left: {left:?}, right: {right:?})",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}

/// Declares `#[test]` functions that run a property over random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(
                    stringify!($name),
                    config,
                    ($($strategy,)+),
                    |($($arg,)+)| { $body Ok(()) },
                );
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in 1.0f64..2.0) {
            prop_assert!(x < 10);
            prop_assert!((1.0..2.0).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn prop_map_transforms(doubled in (0u32..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn any_produces_values(seed in any::<u64>(), flag in any::<bool>()) {
            // Consume both to prove the strategies compose in tuples.
            let encoded = if flag { seed | 1 } else { seed & !1 };
            prop_assert_eq!(encoded & 1 == 1, flag);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::run_property(
            "always_fails",
            ProptestConfig::with_cases(3),
            (0u32..10,),
            |(_x,)| Err("boom".to_string()),
        );
    }
}
