//! Vendored, dependency-free reimplementation of the subset of the
//! `criterion` benchmarking API used by this workspace.
//!
//! The build environment has no access to a crates registry, so this crate
//! stands in for upstream criterion as a path dependency. It keeps the same
//! source-level API (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `black_box`) and implements a compact
//! measurement loop: per benchmark it warms up, picks an iteration count that
//! fits the configured measurement time, collects timing samples, and prints
//! `time: [min median max]` per-iteration estimates in criterion's familiar
//! output shape. Statistical analysis, plotting and baseline comparison are
//! intentionally out of scope.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Measurement backends (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement — the default and only backend.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone, Copy)]
struct GroupConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line arguments (only a substring benchmark filter is
    /// honoured; harness flags like `--bench` are ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--profile-time" => {
                    if arg == "--profile-time" {
                        args.next();
                    }
                }
                _ if arg.starts_with("--") => {
                    // Unknown harness flag; skip a value if one follows.
                    if let Some(next) = args.peek() {
                        if !next.starts_with("--") {
                            args.next();
                        }
                    }
                }
                _ => self.filter = Some(arg),
            }
        }
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: GroupConfig::default(),
            _measurement: measurement::WallTime,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = GroupConfig::default();
        let skip = self
            .filter
            .as_deref()
            .is_some_and(|needle| !id.contains(needle));
        if !skip {
            run_benchmark(id, &config, f);
        }
        self
    }
}

/// A set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    config: GroupConfig,
    _measurement: M,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.config.sample_size = samples.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.config.measurement_time = time;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.config.warm_up_time = time;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        let skip = self
            .criterion
            .filter
            .as_deref()
            .is_some_and(|needle| !full_id.contains(needle));
        if !skip {
            run_benchmark(&full_id, &self.config, f);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, config: &GroupConfig, mut f: F) {
    // Warm-up: repeatedly run single iterations until the warm-up budget is
    // spent, measuring a rough per-iteration cost along the way.
    let warmup_start = Instant::now();
    let mut warmup_iters: u64 = 0;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warmup_start.elapsed() < config.warm_up_time || warmup_iters == 0 {
        f(&mut bencher);
        warmup_iters += 1;
    }
    let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

    // Pick an iteration count per sample so all samples together roughly fill
    // the measurement time.
    let budget = config.measurement_time.as_secs_f64();
    let iters_per_sample = ((budget / config.sample_size as f64) / per_iter.max(1e-9))
        .ceil()
        .clamp(1.0, 1e9) as u64;

    let mut samples = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        bencher.iters = iters_per_sample;
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples x {} iters)",
        format_time(min),
        format_time(median),
        format_time(max),
        samples.len(),
        iters_per_sample,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.3} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.3} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 25,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 25);
        assert!(b.elapsed >= Duration::ZERO);
    }

    #[test]
    fn groups_run_benchmarks_fast() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(5));
        group.warm_up_time(Duration::from_millis(1));
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn format_time_picks_units() {
        assert!(format_time(2e-9).ends_with("ns"));
        assert!(format_time(2e-6).ends_with("us"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2.0).ends_with('s'));
    }
}
