//! Vendored, dependency-free reimplementation of the subset of the
//! `rand` 0.8 API used by this workspace.
//!
//! The build environment has no access to a crates registry, so the
//! workspace ships this drop-in stand-in as a path dependency. It provides:
//!
//! * [`RngCore`] / [`Rng`] with `gen_bool` and `gen_range` over float and
//!   integer ranges;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a xoshiro256++ generator seeded via SplitMix64
//!   (deterministic, high quality, but *not* bit-compatible with upstream
//!   `StdRng`; everything in this workspace only relies on determinism and
//!   statistical uniformity, never on exact upstream streams);
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unit-interval sample in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range requires low < high");
                low + (high - low) * unit_f64(rng) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range requires low <= high");
                let max = ((1u64 << 53) - 1) as f64;
                let unit = ((rng.next_u64() >> 11) as f64 / max) as $t;
                low + (high - low) * unit
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range requires low < high");
                let span = high.wrapping_sub(low) as u64;
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range requires low <= high");
                let span = (high.wrapping_sub(low) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self) < p
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded with
    /// SplitMix64. Small, fast, `Clone`, and fully deterministic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait providing random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let f: f64 = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let g: f32 = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&g));
            let i: usize = rng.gen_range(0..10);
            assert!(i < 10);
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..5_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(samples.iter().any(|&x| x < 0.1));
        assert!(samples.iter().any(|&x| x > 0.9));
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut order: Vec<usize> = (0..32).collect();
        let original = order.clone();
        order.shuffle(&mut rng);
        assert_ne!(order, original);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        assert!(order.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
